"""Standing audits: incremental top-k maintenance under scene edits.

PR 2 made *recompilation* incremental — one edit recompiles one track
segment instead of the scene. But ranking stayed batch-shaped: every
``rank`` after an edit still splices the whole scene, rebuilds a
:class:`~repro.core.scoring.Scorer` over all factors, and rescores
every track — O(corpus) per edit. A :class:`StandingAudit` is the
incremental-view-maintenance move applied to the ranking itself: an
:class:`~repro.api.spec.AuditSpec` becomes a *standing query* the
session maintains, and each edit rescores only the track ids the
:class:`~repro.serving.edits.SceneEdit` reported as invalidated —
O(changed tracks) work per edit, re-heaping in O(changed · log k).

Why per-track rescoring is byte-identical to the full rescore:
:func:`~repro.core.compile.splice_compiled` is pure array concatenation
with offset shifts — a track's potentials inside the spliced scene are
bitwise the same values its own single-track segment compile produced.
A :class:`~repro.core.scoring.Scorer` built over one segment therefore
scores that track's components to the exact same float64 bits as the
scene-wide scorer, and a standing audit never needs the splice at all.

The maintained structure is the classic bounded top-k heap+threshold:

- ``_items[track_id]``: the track's scored components, best first (the
  segment scorer's own stable order — within a track, equal scores keep
  generation order, exactly like the full rescore);
- ``_cand``: the candidate set — every live item with score ≥ the
  threshold θ (tie-inclusive, so ties at the k boundary are *all*
  candidates and their relative order is resolved only at query time);
- ``_rest``: a lazy max-heap of everything below θ, entries invalidated
  by per-track stamps instead of eager deletion;
- invariant: ``_cand`` holds all items ≥ θ, and either ``|_cand| ≥ k``
  or ``_rest`` has nothing live — so the true top-k is always a subset
  of ``_cand`` and a query is one O(|cand| log |cand|) sort of ~k items.

An edit evicts the changed tracks' entries (stamp bump makes their heap
entries stale), rescores them from their fresh segments, refills the
candidate set from the heap when an eviction dug into the top-k, and
demotes the overflow when candidates grow past ~2k.

Queries reproduce the full rescore's exact tie-break — items generated
in scene-track order, stable-sorted by descending score — via the sort
key ``(-score, track_arrival_order, within_track_rank)``. New tracks
always *append* to the scene under the edit algebra, so arrival order
is scene order; callers mutating ``scene.tracks`` out of order behind
the session's back (already unsupported) void that guarantee.

The existing full-rescore path stays the executable reference:
:meth:`StandingAudit.verify` checks the maintained top-k bit-for-bit
(raw float64 score bytes, same item objects) against
:meth:`~repro.serving.session.SceneSession.rank`, the same way
delta-vs-scratch compiles and vectorized-vs-scalar scores are verified.
"""

from __future__ import annotations

import heapq
import itertools
import math
import struct
import time
from dataclasses import dataclass

from repro.core.scoring import ScoredItem, Scorer, normalize_rank_kind
from repro.obs import metrics as obs_metrics

__all__ = ["StandingAudit", "StandingStats"]

# Process-wide standing-audit maintenance metrics: the per-audit
# StandingStats folded into the registry as batched deltas per
# maintenance delivery (one lock round-trip per counter per edit, not
# per item). Names are API — docs/API.md, "Observability".
_EDITS_SEEN = obs_metrics.counter(
    "repro_standing_edits_total",
    "Maintenance deliveries (edits seen) across all standing audits",
)
_TRACKS_RESCORED = obs_metrics.counter(
    "repro_standing_tracks_rescored_total",
    "Tracks rescored by standing-audit maintenance",
)
_ITEMS_RESCORED = obs_metrics.counter(
    "repro_standing_items_rescored_total",
    "Scored items produced by standing-audit rescores",
)
_HEAP_REFILLS = obs_metrics.counter(
    "repro_standing_heap_refills_total",
    "Candidate-set refills from the below-threshold heap",
)
_HEAP_DEMOTIONS = obs_metrics.counter(
    "repro_standing_heap_demotions_total",
    "Candidates demoted back below the top-k threshold",
)
_MAINTAIN_SECONDS = obs_metrics.counter(
    "repro_standing_maintain_seconds_total",
    "Cumulative seconds spent maintaining standing top-k structures",
)

#: Sentinel: "compile the filter from the spec" (so an explicit
#: ``filt=None`` can still mean "no filter").
SPEC_FILTER = object()


@dataclass
class StandingStats:
    """Counters + maintenance timing for one standing audit."""

    edits_seen: int = 0
    tracks_rescored: int = 0
    items_rescored: int = 0
    heap_refills: int = 0
    heap_demotions: int = 0
    #: Seconds spent maintaining the top-k structure (rescoring changed
    #: segments, re-heaping, and query-time candidate sorts) — the cost
    #: the serving benchmark compares against a full rescore.
    maintain_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "edits_seen": self.edits_seen,
            "tracks_rescored": self.tracks_rescored,
            "items_rescored": self.items_rescored,
            "heap_refills": self.heap_refills,
            "heap_demotions": self.heap_demotions,
            "maintain_ms": round(1e3 * self.maintain_s, 3),
        }


def _signature(ranked) -> list[tuple]:
    """Bit-exact ranking fingerprint (scores as raw float64 bytes)."""
    return [
        (s.scene_id, s.track_id, s.n_factors, struct.pack("<d", s.score))
        for s in ranked
    ]


class StandingAudit:
    """One :class:`~repro.api.spec.AuditSpec` maintained as a standing
    query over a :class:`~repro.serving.session.SceneSession`.

    Built by :meth:`SceneSession.subscribe`; the session calls
    :meth:`_rescore` with the changed track ids after every edit, under
    its own lock — all state here is guarded by that same lock.

    Args:
        session: The owning session.
        spec: The audit declaration. Only the ranking fields matter
            (``kind``/``top_k``/``filters``); execution fields (backend,
            scene source, model path) are ignored — a standing audit
            always ranks with the session's engine.
        audit_id: Subscription identifier; defaults to ``sa-<hash>`` of
            the spec's standing-normalized form
            (:meth:`~repro.api.spec.AuditSpec.standing_spec`), so equal
            standing queries get equal ids.
        filt: Compiled filter override (the backend contract hands
            ``run`` a prebuilt filter); defaults to compiling the
            spec's own :class:`~repro.api.spec.FilterSpec`.
    """

    def __init__(self, session, spec, audit_id: str | None = None, filt=SPEC_FILTER):
        spec.validate()
        self.session = session
        self.spec = spec
        self.kind = normalize_rank_kind(spec.kind)
        self.top_k = spec.top_k
        self.filt = spec.compile_filter() if filt is SPEC_FILTER else filt
        self.audit_id = (
            audit_id
            if audit_id is not None
            else f"sa-{spec.standing_spec().spec_hash()[:12]}"
        )
        self.stats = StandingStats()
        #: Tracks rescored by the most recent maintenance delivery —
        #: the per-edit cost a caller prints next to the updated top-k.
        self.last_rescored = 0
        #: track_id -> that track's ScoredItems, segment-scorer order.
        self._items: dict[str, list[ScoredItem]] = {}
        #: track_id -> arrival counter (the cross-track tie-break).
        self._track_order: dict[str, int] = {}
        self._order_seq = itertools.count()
        #: track_id -> generation stamp; bumping it lazily invalidates
        #: every heap entry the track ever pushed.
        self._stamp: dict[str, int] = {}
        #: (track_id, index) of every live item with score >= threshold.
        self._cand: set[tuple[str, int]] = set()
        #: max-heap (as negated min-heap) of items below the threshold:
        #: (-score, stamp, track_id, index); stale entries skipped on pop.
        self._rest: list[tuple[float, int, str, int]] = []
        self._threshold = -math.inf
        self._cached: list[ScoredItem] | None = None

    # ------------------------------------------------------------------
    # Maintenance (called by the session, under the session lock)
    # ------------------------------------------------------------------
    def _rescore(self, changed, initial: bool = False) -> int:
        """Rescore the changed tracks from their fresh segments.

        Returns the number of tracks rescored. O(changed) segment
        ranks plus O(changed · log k) heap work; untouched tracks'
        scores are reused bit-for-bit.
        """
        t0 = time.perf_counter()
        stats_before = (
            self.stats.items_rescored,
            self.stats.heap_refills,
            self.stats.heap_demotions,
        )
        changed = set(changed)
        session = self.session
        # Arrival order follows scene order (edits append new tracks),
        # assigned scene-ordered here so one invalidate() reporting
        # several brand-new tracks still ties them off correctly.
        if not changed <= self._track_order.keys():
            for track in session.scene.tracks:
                track_id = track.track_id
                if track_id in changed and track_id not in self._track_order:
                    self._track_order[track_id] = next(self._order_seq)
        rescored = 0
        for track_id in changed:
            self._evict_track(track_id)
            segment = session._segments.get(track_id)
            if segment is None:
                if any(t.track_id == track_id for t in session.scene.tracks):
                    raise RuntimeError(
                        f"session {session.session_id!r} has no segment for "
                        f"track {track_id!r} — the scene was mutated without "
                        "apply()/invalidate()"
                    )
                self._track_order.pop(track_id, None)
                continue
            items = Scorer(segment.compiled).rank(self.kind, self.filt)
            rescored += 1
            self.stats.items_rescored += len(items)
            if not items:
                continue
            self._items[track_id] = items
            stamp = self._stamp[track_id]
            for index, item in enumerate(items):
                if self.top_k is None or item.score >= self._threshold:
                    self._cand.add((track_id, index))
                else:
                    heapq.heappush(
                        self._rest, (-item.score, stamp, track_id, index)
                    )
        self._rebalance()
        self._cached = None
        self.last_rescored = rescored
        self.stats.tracks_rescored += rescored
        if not initial:
            self.stats.edits_seen += 1
            _EDITS_SEEN.inc()
        elapsed = time.perf_counter() - t0
        self.stats.maintain_s += elapsed
        # Fold this delivery into the registry as batched deltas — one
        # lock round-trip per counter per edit, not per item.
        if rescored:
            _TRACKS_RESCORED.inc(rescored)
        items = self.stats.items_rescored - stats_before[0]
        refills = self.stats.heap_refills - stats_before[1]
        demotions = self.stats.heap_demotions - stats_before[2]
        if items:
            _ITEMS_RESCORED.inc(items)
        if refills:
            _HEAP_REFILLS.inc(refills)
        if demotions:
            _HEAP_DEMOTIONS.inc(demotions)
        _MAINTAIN_SECONDS.inc(elapsed)
        return rescored

    def _evict_track(self, track_id: str) -> None:
        old = self._items.pop(track_id, None)
        if old is not None:
            for index in range(len(old)):
                self._cand.discard((track_id, index))
        self._stamp[track_id] = self._stamp.get(track_id, 0) + 1

    def _rebalance(self) -> None:
        """Restore the candidate invariant after evictions/insertions."""
        if self.top_k is None:
            self._threshold = -math.inf
            return
        k = self.top_k
        cand, rest = self._cand, self._rest
        # Refill from the heap while the candidate set is short, then
        # drain anything tied with the (possibly lowered) threshold so
        # boundary ties are always resolved at query time, never here.
        while rest:
            neg_score, stamp, track_id, index = rest[0]
            if self._stamp.get(track_id) != stamp:
                heapq.heappop(rest)  # stale: the track was rescored
                continue
            score = -neg_score
            if len(cand) < k:
                heapq.heappop(rest)
                cand.add((track_id, index))
                self._threshold = score
                self.stats.heap_refills += 1
            elif score >= self._threshold:
                heapq.heappop(rest)
                cand.add((track_id, index))
            else:
                break
        if len(cand) < k:
            # Fewer than k live items in total: everything qualifies.
            self._threshold = -math.inf
            return
        # Shrink: inserts while θ was low can balloon the candidate
        # set; past ~2k, recompute θ as the k-th best score and demote
        # the tail (amortized O(|cand| log k), rare).
        if len(cand) > max(2 * k, k + 8):
            scored = [
                (self._items[tid][idx].score, tid, idx) for tid, idx in cand
            ]
            theta = heapq.nlargest(k, (s for s, _, _ in scored))[-1]
            if theta > self._threshold:
                self._threshold = theta
                for score, track_id, index in scored:
                    if score < theta:
                        cand.discard((track_id, index))
                        heapq.heappush(
                            self._rest,
                            (-score, self._stamp[track_id], track_id, index),
                        )
                        self.stats.heap_demotions += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def results(self) -> list[ScoredItem]:
        """The maintained top-k, byte-identical to a full rescore.

        Sorts the ~k candidates with the same total order the full
        rescore induces — descending score, ties broken by track
        arrival (= scene) order then within-track generation order —
        and truncates to ``top_k``. Cached until the next edit.
        """
        session = self.session
        with session._lock:
            session._ensure_clean_locked()
            if self._cached is None:
                t0 = time.perf_counter()
                items, order = self._items, self._track_order
                entries = sorted(
                    self._cand,
                    key=lambda key: (
                        -items[key[0]][key[1]].score,
                        order[key[0]],
                        key[1],
                    ),
                )
                out = [items[tid][idx] for tid, idx in entries]
                self._cached = (
                    out[: self.top_k] if self.top_k is not None else out
                )
                self.stats.maintain_s += time.perf_counter() - t0
            return list(self._cached)

    def results_dicts(self) -> list[dict]:
        """Wire form of :meth:`results` (``ScoredItem.to_dict`` items)."""
        return [item.to_dict(self.kind) for item in self.results()]

    # ------------------------------------------------------------------
    # Reference equivalence
    # ------------------------------------------------------------------
    def full_rescore(self) -> list[ScoredItem]:
        """The executable reference: splice + full Scorer + full rank."""
        return self.session.rank(self.kind, self.filt, top_k=self.top_k)

    def verify(self) -> bool:
        """Assert the maintained top-k equals the full rescore, bit-for-bit.

        Compares raw float64 score bytes, identity of the ranked item
        objects, and every ScoredItem field. The property tests drive
        randomized edit sequences through this check; a paranoid
        deployment could sample it per edit.
        """
        incremental = self.results()
        reference = self.full_rescore()
        assert _signature(incremental) == _signature(reference), (
            f"standing audit {self.audit_id!r} diverged from the full "
            f"rescore: {len(incremental)} vs {len(reference)} items"
        )
        for ours, theirs in zip(incremental, reference):
            assert ours.item is theirs.item, (
                f"standing audit {self.audit_id!r} ranked a different "
                f"object for {theirs.track_id!r}"
            )
            assert ours == theirs
        return True
