"""TCP front end for the serving protocol: ``serve --listen HOST:PORT``.

The :class:`~repro.serving.service.StreamingService` is transport
agnostic — it maps request dicts to response dicts, and its
:meth:`~repro.serving.service.StreamingService.serve` loop speaks
line-delimited JSON over any reader/writer pair. This module puts that
exact loop behind a threaded TCP listener: each connection gets its own
handler thread running ``service.serve`` over the socket's streams, so
one service instance (one fitted model, one session store) serves many
concurrent clients — the worker side of the distributed ``remote``
backend (:mod:`repro.api.remote`).

Two entry points:

- :func:`serve_tcp` — bind a :class:`ProtocolTCPServer` (port ``0``
  picks a free port); the caller runs ``server.serve_forever()``
  (this is what ``python -m repro.cli serve --listen`` does);
- :class:`TcpWorker` — the in-process convenience: service + server +
  daemon thread in one object, used by tests, the eval harness, and
  the perf benchmarks to spawn real TCP workers without subprocesses.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from repro.api import frames
from repro.serving.service import StreamingService

__all__ = ["ProtocolTCPServer", "TcpWorker", "serve_tcp"]


class _ProtocolHandler(socketserver.StreamRequestHandler):
    """One connection: line-JSON or v2 frames, chosen by the first byte.

    Nagle is disabled (a socketserver *handler* knob): responses are
    one small frame/line each, and with pipelined requests in flight a
    Nagle'd second response would sit out the peer's delayed-ACK
    window (~40 ms) — three orders of magnitude over a warm audit.

    A framed conversation opens with :data:`repro.api.frames.MAGIC`,
    whose first byte is outside ASCII and therefore can never start a
    JSON line — so one listener serves v1 line-JSON clients and v2
    framed clients on the same port with no upgrade round-trip.
    """

    disable_nagle_algorithm = True

    def handle(self) -> None:
        service = self.server.service
        first = self.rfile.peek(1)[:1]
        if first == frames.MAGIC[:1] and getattr(
            service, "supports_frames", False
        ):
            service.serve_frames(self.rfile, self.wfile)
            return
        reader = self.rfile
        writer = _Utf8Writer(self.wfile)
        service.serve(_decode_lines(reader), writer)


def _decode_lines(binary_reader):
    for raw in binary_reader:
        yield raw.decode("utf-8", errors="replace")


class _Utf8Writer:
    """The minimal text-mode facade ``StreamingService.serve`` writes to."""

    def __init__(self, binary_writer):
        self._out = binary_writer

    def write(self, text: str) -> None:
        self._out.write(text.encode("utf-8"))

    def flush(self) -> None:
        self._out.flush()


class ProtocolTCPServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server bound to one :class:`StreamingService`.

    Accepted handler sockets are tracked so :meth:`server_close` can
    end *live conversations* too — ``ThreadingTCPServer`` only closes
    the listener, which leaves handler threads parked on idle client
    reads (and their sockets open) after a shutdown; tests and
    benchmarks standing up many workers leaked both.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: StreamingService, address: tuple[str, int]):
        self.service = service
        self._handler_lock = threading.Lock()
        self._handler_sockets: set = set()
        super().__init__(address, _ProtocolHandler)

    @property
    def address(self) -> str:
        """The bound ``"host:port"`` (resolved even when port 0 was asked)."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def process_request(self, request, client_address) -> None:
        with self._handler_lock:
            self._handler_sockets.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._handler_lock:
            self._handler_sockets.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        """Force-close every live handler connection.

        ``shutdown(SHUT_RDWR)`` unblocks a handler thread sitting in a
        read, so it exits its serve loop promptly; the handler's own
        ``shutdown_request`` then finishes the close and untracks it.
        """
        with self._handler_lock:
            live = list(self._handler_sockets)
        for sock in live:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def server_close(self) -> None:
        super().server_close()
        self.close_all_connections()


def serve_tcp(
    service: StreamingService, host: str = "127.0.0.1", port: int = 0
) -> ProtocolTCPServer:
    """Bind the protocol on ``host:port`` and return the (unstarted) server.

    The caller decides the threading: ``server.serve_forever()`` to
    block (the CLI), or hand it to a thread (see :class:`TcpWorker`).
    """
    return ProtocolTCPServer(service, (host, port))


class TcpWorker:
    """An in-process protocol worker: service + TCP listener + thread.

    Spawns a real TCP endpoint (ephemeral port by default) backed by a
    daemon thread, so a test or benchmark can stand up N workers that
    are byte-for-byte the same surface ``repro.cli serve --listen``
    exposes. Pass a prebuilt ``service`` or a fitted ``fixy`` (plus
    ``StreamingService`` keyword options — e.g. ``warehouse=PATH``
    points the worker at a shared scene warehouse so out-of-core
    audits reach it as hashes with no bodies on the wire).
    """

    def __init__(
        self,
        fixy=None,
        service: StreamingService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_options,
    ):
        if service is None:
            if fixy is None:
                raise ValueError("TcpWorker needs a fixy or a service")
            service = StreamingService(fixy, **service_options)
        self.service = service
        self.server = serve_tcp(service, host=host, port=port)
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            name=f"tcp-worker-{self.server.address}",
            daemon=True,
        )
        self.thread.start()

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self) -> None:
        """Shut the listener *and every live connection* down, then join.

        ``server_close`` force-closes accepted handler sockets too
        (see :meth:`ProtocolTCPServer.close_all_connections`), so no
        handler thread is left parked on an idle client read — a
        stopped worker leaks neither threads nor sockets.
        """
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)

    #: Alias: ``close()`` reads naturally on a resource-shaped object.
    close = stop

    def __enter__(self) -> "TcpWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
