"""Streaming serving layer: incremental sessions, delta recompilation,
process-sharded ranking.

The batch engine (:class:`repro.core.engine.Fixy`) compiles a whole
scene per query — the right shape for reproducing the paper's
experiments, the wrong shape for a long-lived service where scenes
mutate as sensor frames arrive and ranking traffic fans across cores.
This package is the serving-side architecture on top of the columnar
compile pipeline:

- :mod:`repro.serving.edits` — a small algebra of scene edits
  (insert/remove/replace for tracks, bundles, and observations), each
  reporting exactly which tracks it touched;
- :class:`~repro.serving.session.SceneSession` — owns a mutable scene
  plus its compiled representation and performs **delta
  recompilation**: only edited tracks are re-extracted and re-scored,
  then spliced back into the scene-wide
  :class:`~repro.core.compile.CompiledColumns` arrays
  (:func:`repro.core.compile.splice_compiled`); the from-scratch
  compile stays the executable reference (``SceneSession.verify``);
- :class:`~repro.serving.standing.StandingAudit` — an
  :class:`~repro.api.spec.AuditSpec` subscribed to a session as a
  *standing query*: per-track scores plus a bounded heap+threshold
  top-k, maintained in O(changed · log k) per edit and byte-identical
  to the full-rescore reference (``StandingAudit.verify``);
- :class:`~repro.serving.sharded.ShardedRanker` — fans ``rank_*`` over
  a ``ProcessPoolExecutor``; scenes travel as ``Scene.to_dict``
  payloads and each worker keeps its own model + compiled-scene LRU
  cache (the per-process replacement for the engine's in-process
  cache);
- :class:`~repro.serving.store.SessionStore` — many concurrent
  sessions with LRU eviction;
- :class:`~repro.serving.service.StreamingService` — the server side
  of the versioned request/response protocol
  (:mod:`repro.api.protocol`) over the store (``python -m repro.cli
  serve``; the in-repo client is
  :class:`repro.api.AuditClient`, and version-less v0 requests are
  still answered through a deprecation shim);
- :mod:`repro.serving.tcp` — the same protocol behind a threaded TCP
  listener (``repro.cli serve --listen HOST:PORT``); each worker in
  the distributed ``remote`` backend is one of these;
- :mod:`repro.serving.gateway` — the asyncio serving front
  (``serve --listen … --async``): thousands of multiplexed
  connections on one event loop, admission control with typed
  ``overloaded`` load shedding, and compile coalescing for
  concurrent same-scene audits, all dispatching to the same
  :class:`StreamingService` handlers (byte-identical responses).

Everything here is an execution strategy behind the unified audit API:
:class:`repro.api.AuditSpec` runs on the session and sharded layers via
the ``session`` and ``sharded`` backends with rankings byte-identical
to the inline engine.
"""

from repro.serving.gateway import AsyncGateway, GatewayWorker
from repro.serving.edits import (
    InsertBundle,
    InsertObservation,
    InsertTrack,
    RemoveBundle,
    RemoveObservation,
    RemoveTrack,
    ReplaceObservation,
    SceneEdit,
    edit_from_dict,
)
from repro.serving.session import SceneSession, SessionStats
from repro.serving.sharded import ShardedRanker
from repro.serving.standing import StandingAudit, StandingStats
from repro.serving.store import SessionStore
from repro.serving.service import StreamingService
from repro.serving.tcp import ProtocolTCPServer, TcpWorker, serve_tcp

__all__ = [
    "AsyncGateway",
    "GatewayWorker",
    "ProtocolTCPServer",
    "TcpWorker",
    "serve_tcp",
    "InsertBundle",
    "InsertObservation",
    "InsertTrack",
    "RemoveBundle",
    "RemoveObservation",
    "RemoveTrack",
    "ReplaceObservation",
    "SceneEdit",
    "SceneSession",
    "SessionStats",
    "SessionStore",
    "ShardedRanker",
    "StandingAudit",
    "StandingStats",
    "StreamingService",
    "edit_from_dict",
]
