"""StreamingService: a JSON request/response facade over a SessionStore.

One request, one response, both plain dicts — the transport-agnostic
core of ``python -m repro.cli serve`` (which speaks it over
line-delimited JSON on stdin/stdout, the classic subprocess/socket
protocol shape). Operations:

======== ==============================================================
op       request fields → response fields
======== ==============================================================
open     ``scene`` (Scene.to_dict), optional ``session_id`` →
         ``session_id``, ``n_tracks``, ``version``
edit     ``session_id``, ``edit`` (SceneEdit.to_dict) → ``changed``,
         ``version``
rank     ``session_id``, optional ``kind`` (tracks default),
         ``top_k`` → ``results`` (JSON-safe scored items)
close    ``session_id`` → ``closed``
stats    → store counters
======== ==============================================================

Every response carries ``"ok"``; failures come back as
``{"ok": false, "error": ...}`` instead of raising, so one malformed
request cannot take down the serving loop.
"""

from __future__ import annotations

import json

from repro.core.model import Observation, ObservationBundle, Scene, Track
from repro.core.scoring import ScoredItem
from repro.serving.edits import edit_from_dict
from repro.serving.store import SessionStore

__all__ = ["StreamingService", "scored_item_to_dict"]


def scored_item_to_dict(scored: ScoredItem, kind: str) -> dict:
    """JSON-safe description of one ranked component."""
    out = {
        "kind": kind.rstrip("s"),
        "score": scored.score,
        "scene_id": scored.scene_id,
        "track_id": scored.track_id,
        "n_factors": scored.n_factors,
    }
    item = scored.item
    if isinstance(item, Observation):
        out["obs_id"] = item.obs_id
        out["frame"] = item.frame
    elif isinstance(item, ObservationBundle):
        out["frame"] = item.frame
        out["n_observations"] = len(item)
    elif isinstance(item, Track):
        out["n_observations"] = item.n_observations
    return out


class StreamingService:
    """Dispatches JSON-dict requests onto a :class:`SessionStore`."""

    def __init__(self, fixy, max_sessions: int = 32):
        self.store = SessionStore(fixy, max_sessions=max_sessions)

    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Process one request dict; always returns a response dict."""
        try:
            op = request.get("op")
            handler = {
                "open": self._op_open,
                "edit": self._op_edit,
                "rank": self._op_rank,
                "close": self._op_close,
                "stats": self._op_stats,
            }.get(op)
            if handler is None:
                raise ValueError(
                    f"unknown op {op!r}; expected open, edit, rank, close, "
                    "or stats"
                )
            response = handler(request)
            response["ok"] = True
            return response
        except Exception as exc:  # protocol boundary: report, don't die
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def serve(self, lines, out) -> int:
        """Line-delimited JSON loop: one request per input line.

        Returns the number of requests handled. Blank lines are
        skipped; unparseable lines produce an error response like any
        other bad request.
        """
        handled = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response = {"ok": False, "error": f"bad JSON: {exc}"}
            else:
                response = self.handle(request)
            out.write(json.dumps(response) + "\n")
            out.flush()
            handled += 1
        return handled

    # ------------------------------------------------------------------
    def _op_open(self, request: dict) -> dict:
        scene = Scene.from_dict(request["scene"])
        session = self.store.open(scene, session_id=request.get("session_id"))
        return {
            "session_id": session.session_id,
            "n_tracks": len(scene.tracks),
            "version": session.version,
        }

    def _op_edit(self, request: dict) -> dict:
        edit = edit_from_dict(request["edit"])
        session = self.store.get(request["session_id"])
        changed = session.apply(edit)
        return {"changed": sorted(changed), "version": session.version}

    def _op_rank(self, request: dict) -> dict:
        kind = request.get("kind", "tracks")
        top_k = request.get("top_k")
        ranked = self.store.rank(
            request["session_id"], kind=kind,
            top_k=int(top_k) if top_k is not None else None,
        )
        return {
            "kind": kind,
            "results": [scored_item_to_dict(s, kind) for s in ranked],
        }

    def _op_close(self, request: dict) -> dict:
        return {"closed": self.store.close(request["session_id"])}

    def _op_stats(self, request: dict) -> dict:
        return self.store.stats()
