"""StreamingService: the versioned request/response facade over sessions.

One request, one response, both plain dicts in the schema of
:mod:`repro.api.protocol` — the transport-agnostic core of
``python -m repro.cli serve`` (which speaks it over line-delimited JSON
on stdin/stdout) and the server half of
:class:`~repro.api.client.AuditClient`. Operations:

======== ==============================================================
op       request fields → response fields
======== ==============================================================
open     ``scene`` (Scene.to_dict), optional ``session_id`` →
         ``session_id``, ``n_tracks``, ``version``
edit     ``session_id``, ``edit`` (SceneEdit.to_dict) → ``changed``,
         ``version``
rank     ``session_id``, optional ``kind`` (tracks default),
         ``top_k`` → ``results`` (ScoredItem.to_dict items)
audit    ``spec`` (AuditSpec.to_dict) + ``session_id`` *or*
         ``scenes`` (list of Scene.to_dict) → ``result``
         (AuditResult.to_dict)
close    ``session_id`` → ``closed``
stats    → store counters
hello    → ``protocol_version``, ``model_fingerprint``, ``capacity``,
         ``features``, ``ops`` (worker registration — what a
         :class:`~repro.api.pool.WorkerPool` checks before dispatch)
health   → ``status``, ``uptime_s``, ``requests_handled`` + store
         counters (liveness probe)
======== ==============================================================

Every v1 request and response carries ``"v"``; failures come back as
``{"ok": false, "error": {"code", "message", ...}}`` instead of
raising, so one malformed request cannot take down the serving loop.
Version-less (v0) requests are answered through a deprecation shim in
the v0 dialect — string errors, no ``"v"`` — unless the service was
built with ``accept_legacy=False``, in which case they get a
structured ``unsupported_version`` error.
"""

from __future__ import annotations

import json
import time
import warnings

from repro.api import protocol
from repro.core.model import Scene
from repro.core.scoring import ScoredItem
from repro.serving.edits import edit_from_dict
from repro.serving.store import SessionStore

__all__ = ["StreamingService", "scored_item_to_dict"]


def scored_item_to_dict(scored: ScoredItem, kind: str) -> dict:
    """Deprecated: use :meth:`repro.core.scoring.ScoredItem.to_dict`."""
    warnings.warn(
        "scored_item_to_dict is deprecated; use ScoredItem.to_dict(kind)",
        DeprecationWarning,
        stacklevel=2,
    )
    return scored.to_dict(kind)


class StreamingService:
    """Dispatches protocol requests onto a :class:`SessionStore`.

    Args:
        fixy: A fitted engine; sessions and server-side audits use its
            features, AOFs, and learned model.
        max_sessions: Live scene sessions kept before LRU eviction.
        accept_legacy: Answer version-less (v0) requests in the v0
            dialect with a :class:`DeprecationWarning` (default). When
            false, such requests get ``unsupported_version``.
        capacity: Advertised audit capacity (a unitless weight the
            worker pool uses to size scene partitions; a worker with
            capacity 2 gets roughly twice the scenes of one with 1).
    """

    def __init__(
        self,
        fixy,
        max_sessions: int = 32,
        accept_legacy: bool = True,
        capacity: int = 1,
    ):
        self.store = SessionStore(fixy, max_sessions=max_sessions)
        self.accept_legacy = accept_legacy
        self.capacity = int(capacity)
        self.requests_handled = 0
        self._started = time.time()
        self._ops = {
            "open": self._op_open,
            "edit": self._op_edit,
            "rank": self._op_rank,
            "audit": self._op_audit,
            "close": self._op_close,
            "stats": self._op_stats,
            "hello": self._op_hello,
            "health": self._op_health,
        }

    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Process one request dict; always returns a response dict."""
        self.requests_handled += 1
        try:
            version = protocol.negotiate_version(request, self.accept_legacy)
        except protocol.ProtocolError as exc:
            return protocol.error_response(
                exc.code, exc.message, details=exc.details
            )
        try:
            op = request.get("op")
            handler = self._ops.get(op)
            if handler is None:
                raise protocol.ProtocolError(
                    protocol.UNKNOWN_OP,
                    f"unknown op {op!r}; expected one of "
                    f"{', '.join(sorted(self._ops))}",
                )
            payload = handler(request)
        except Exception as exc:  # protocol boundary: report, don't die
            error = protocol.classify_exception(exc)
            if version == protocol.LEGACY_VERSION:
                # v0 dialect: the error is a bare string.
                return {"ok": False, "error": error.message}
            return protocol.error_response(
                error.code, error.message, details=error.details
            )
        if version == protocol.LEGACY_VERSION:
            return {"ok": True, **payload}
        return protocol.ok_response(payload)

    def serve(self, lines, out) -> int:
        """Line-delimited JSON loop: one request per input line.

        Returns the number of requests handled. Blank lines are
        skipped; unparseable lines produce an error response like any
        other bad request (in the v0 dialect when legacy requests are
        accepted — an undecodable line has no version to negotiate).
        """
        handled = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                if self.accept_legacy:
                    response = {"ok": False, "error": f"bad JSON: {exc}"}
                else:
                    response = protocol.error_response(
                        protocol.BAD_JSON, f"bad JSON: {exc}"
                    )
            else:
                response = self.handle(request)
            out.write(json.dumps(response) + "\n")
            out.flush()
            handled += 1
        return handled

    # ------------------------------------------------------------------
    def _op_open(self, request: dict) -> dict:
        scene = Scene.from_dict(request["scene"])
        session = self.store.open(scene, session_id=request.get("session_id"))
        return {
            "session_id": session.session_id,
            "n_tracks": len(scene.tracks),
            "version": session.version,
        }

    def _op_edit(self, request: dict) -> dict:
        edit = edit_from_dict(request["edit"])
        session = self.store.get(request["session_id"])
        changed = session.apply(edit)
        return {"changed": sorted(changed), "version": session.version}

    def _op_rank(self, request: dict) -> dict:
        kind = request.get("kind", "tracks")
        top_k = request.get("top_k")
        ranked = self.store.rank(
            request["session_id"], kind=kind,
            top_k=int(top_k) if top_k is not None else None,
        )
        return {
            "kind": kind,
            "results": [s.to_dict(kind) for s in ranked],
        }

    def _op_audit(self, request: dict) -> dict:
        """Execute an AuditSpec server-side (live session or shipped scenes)."""
        from repro.api import API_VERSION, Audit, AuditSpec
        from repro.api.result import AuditProvenance, AuditResult

        spec = AuditSpec.from_dict(request["spec"])
        session_id = request.get("session_id")
        if session_id is not None:
            # Rank the live session's already-spliced state directly —
            # the session *is* the session backend, minus a recompile.
            session = self.store.get(session_id)
            t0 = time.perf_counter()
            items = session.rank(
                spec.kind, spec.compile_filter(), top_k=spec.top_k
            )
            rank_s = time.perf_counter() - t0
            learned = self.store.fixy.learned
            result = AuditResult(
                items=items,
                spec=spec,
                provenance=AuditProvenance(
                    backend="session",
                    spec_hash=spec.spec_hash(),
                    model_fingerprint=(
                        learned.fingerprint() if learned is not None else None
                    ),
                    n_scenes=1,
                    api_version=API_VERSION,
                    timings={"rank_s": rank_s, "total_s": rank_s},
                ),
            )
        else:
            scenes = [Scene.from_dict(d) for d in request["scenes"]]
            with Audit(spec, fixy=self.store.fixy) as audit:
                result = audit.run(scenes=scenes)
        return {"result": result.to_dict()}

    def _op_close(self, request: dict) -> dict:
        return {"closed": self.store.close(request["session_id"])}

    def _op_stats(self, request: dict) -> dict:
        return self.store.stats()

    def _op_hello(self, request: dict) -> dict:
        """Worker registration: who am I, what do I serve, how much.

        The worker pool (:mod:`repro.api.pool`) calls this once per
        worker before dispatching scenes — the fingerprint is how a
        coordinator proves every worker scores with the *same* model
        (the byte-identity precondition across machines).
        """
        learned = self.store.fixy.learned
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "model_fingerprint": (
                learned.fingerprint() if learned is not None else None
            ),
            "capacity": self.capacity,
            "features": [f.name for f in self.store.fixy.features],
            "ops": sorted(self._ops),
        }

    def _op_health(self, request: dict) -> dict:
        """Liveness + stats: cheap enough to poll between audits."""
        return {
            "status": "ok",
            "uptime_s": time.time() - self._started,
            "requests_handled": self.requests_handled,
            "capacity": self.capacity,
            **self.store.stats(),
        }
