"""StreamingService: the versioned request/response facade over sessions.

One request, one response, both plain dicts in the schema of
:mod:`repro.api.protocol` — the transport-agnostic core of
``python -m repro.cli serve`` (which speaks it over line-delimited JSON
on stdin/stdout) and the server half of
:class:`~repro.api.client.AuditClient`. Operations:

======== ==============================================================
op       request fields → response fields
======== ==============================================================
open     ``scene`` (Scene.to_dict), optional ``session_id`` →
         ``session_id``, ``n_tracks``, ``version``
edit     ``session_id``, ``edit`` (SceneEdit.to_dict), optional
         ``standing`` (default true) → ``changed``, ``version``
         [+ ``standing``: per-subscription incrementally maintained
         top-k — ``{audit_id: {kind, rescored, results}}``]
rank     ``session_id``, optional ``kind`` (tracks default),
         ``top_k`` → ``results`` (ScoredItem.to_dict items)
subscribe ``session_id``, ``spec`` (AuditSpec.to_dict), optional
         ``audit_id`` → ``audit_id``, ``kind``, ``results`` (the
         initial top-k; maintained incrementally from then on)
unsubscribe ``session_id``, ``audit_id`` → ``unsubscribed``
standing ``session_id``, ``audit_id`` → ``audit_id``, ``kind``,
         ``results``, ``stats`` (query a standing audit's maintained
         top-k without editing)
audit    ``spec`` (AuditSpec.to_dict) + ``session_id`` *or*
         ``scenes`` (list of Scene.to_dict) *or* v2
         ``scene_hashes`` (content hashes; bodies as frame blobs,
         misses answered with ``need``) → ``result``
         (AuditResult.to_dict) [+ ``scene_cache`` hit/miss counts]
close    ``session_id`` → ``closed``
stats    → store counters
hello    → ``protocol_version``, ``model_fingerprint``, ``capacity``,
         ``features``, ``ops`` (worker registration — what a
         :class:`~repro.api.pool.WorkerPool` checks before dispatch)
health   → ``status``, ``uptime_s``, ``requests_handled``,
         ``metrics`` (compact counter totals) + store counters
         (liveness probe)
metrics  v2+ → ``metrics`` (full registry snapshot), optional
         ``text`` (Prometheus exposition) when requested
======== ==============================================================

Observability (protocol v2, all additive): every request is metered
into the process metrics registry (:mod:`repro.obs.metrics`), and a
request carrying ``trace_id`` (+ optional ``parent_span``) has its
handler spans returned on the response's ``spans`` field so the
coordinator can stitch one end-to-end trace per audit
(:mod:`repro.obs.trace`).

Every versioned request and response carries ``"v"``, and the service
answers in the version it was asked in (a v1 client keeps getting v1
responses from this v2 build); failures come back as
``{"ok": false, "error": {"code", "message", ...}}`` instead of
raising, so one malformed request cannot take down the serving loop.
Version-less (v0) requests are answered through a deprecation shim in
the v0 dialect — string errors, no ``"v"`` — unless the service was
built with ``accept_legacy=False``, in which case they get a
structured ``unsupported_version`` error.

Protocol v2 adds the binary framed wire (:mod:`repro.api.frames`,
served by :meth:`StreamingService.serve_frames` — the TCP front end
auto-detects it per connection from the frame magic) and
content-addressed scene transport: an ``audit`` request may name
``scene_hashes`` instead of shipping ``scenes``; bodies arrive as
packed-scene frame blobs, are decoded once into a bounded
:class:`~repro.api.frames.SceneCache`, and hashes the cache cannot
resolve are answered with ``{"ok": true, "need": [...]}`` so the
coordinator resends only the missing bodies.
"""

from __future__ import annotations

import json
import time
import warnings

from repro.api import frames, protocol
from repro.core.model import Scene
from repro.core.scoring import ScoredItem
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import Stopwatch
from repro.serving.edits import edit_from_dict
from repro.serving.store import SessionStore

__all__ = ["StreamingService", "scored_item_to_dict"]

# Per-op serving metrics (names are API — see docs/API.md,
# "Observability"). Unknown ops collapse into the "unknown" label so a
# misbehaving client cannot mint unbounded series.
_REQUESTS = obs_metrics.counter(
    "repro_service_requests_total",
    "Protocol requests handled, by op",
    labelnames=("op",),
)
_ERRORS = obs_metrics.counter(
    "repro_service_errors_total",
    "Protocol error responses, by op and typed error code",
    labelnames=("op", "code"),
)
_REQUEST_SECONDS = obs_metrics.histogram(
    "repro_service_request_seconds",
    "Request handling latency, by op",
    labelnames=("op",),
)


def _sanitize_wire_request(request) -> dict:
    """Drop underscore-prefixed keys from a request read off the wire.

    Keys like ``_ingested_scenes`` are in-process plumbing between
    :meth:`StreamingService.handle_frame` and the op handlers; a peer
    must not be able to inject them (a raw JSON dict masquerading as a
    decoded scene would bypass the cache's hash-verified path).
    """
    if not isinstance(request, dict):
        return request
    if any(isinstance(k, str) and k.startswith("_") for k in request):
        return {
            k: v
            for k, v in request.items()
            if not (isinstance(k, str) and k.startswith("_"))
        }
    return request


def scored_item_to_dict(scored: ScoredItem, kind: str) -> dict:
    """Deprecated: use :meth:`repro.core.scoring.ScoredItem.to_dict`."""
    warnings.warn(
        "scored_item_to_dict is deprecated; use ScoredItem.to_dict(kind)",
        DeprecationWarning,
        stacklevel=2,
    )
    return scored.to_dict(kind)


class StreamingService:
    """Dispatches protocol requests onto a :class:`SessionStore`.

    Args:
        fixy: A fitted engine; sessions and server-side audits use its
            features, AOFs, and learned model.
        max_sessions: Live scene sessions kept before LRU eviction.
        max_standing: Standing-audit subscriptions allowed per session
            (each one is maintained on every edit of that session).
        accept_legacy: Answer version-less (v0) requests in the v0
            dialect with a :class:`DeprecationWarning` (default). When
            false, such requests get ``unsupported_version``.
        capacity: Advertised audit capacity (a unitless weight the
            worker pool uses to size scene partitions; a worker with
            capacity 2 gets roughly twice the scenes of one with 1).
        scene_cache: Decoded scenes kept by content hash for the v2
            content-addressed transport (bounded LRU; also the size
            advertised in ``hello`` so coordinators can mirror it).
        protocol_version: Highest protocol version to speak (default
            the build's). Pass ``1`` to emulate a v1-only worker —
            no framed wire, v2 requests rejected — which is how the
            mixed-version pool tests stand up "old" workers.
        warehouse: Path to (or instance of) a shared
            :class:`~repro.warehouse.SceneWarehouse`. When set, scene
            hashes that miss the in-memory cache are fetched from the
            warehouse by fingerprint before answering ``need`` — and
            ``hello`` advertises ``warehouse: true`` so coordinators
            dispatching out-of-core audits send hashes with no bodies
            at all.
    """

    def __init__(
        self,
        fixy,
        max_sessions: int = 32,
        accept_legacy: bool = True,
        capacity: int = 1,
        scene_cache: int = 256,
        protocol_version: int = protocol.PROTOCOL_VERSION,
        max_standing: int = 16,
        warehouse=None,
    ):
        if protocol_version not in protocol.SUPPORTED_VERSIONS:
            raise ValueError(
                f"protocol_version must be one of "
                f"{protocol.SUPPORTED_VERSIONS}, got {protocol_version!r}"
            )
        self.warehouse = None
        if warehouse is not None:
            from repro.warehouse import SceneWarehouse

            if isinstance(warehouse, SceneWarehouse):
                self.warehouse = warehouse
            else:
                # create=True: a worker may come up before the first
                # ingest lands; an empty store just answers `need`.
                self.warehouse = SceneWarehouse(warehouse)
        self.store = SessionStore(
            fixy, max_sessions=max_sessions, max_standing=max_standing
        )
        self.accept_legacy = accept_legacy
        self.capacity = int(capacity)
        self.protocol_version = protocol_version
        self.scene_cache = frames.SceneCache(maxsize=scene_cache)
        self.requests_handled = 0
        # Monotonic, deliberately: wall-clock (time.time) steps under
        # NTP, which produced negative / jumping uptime_s.
        self._started = time.monotonic()
        self._ops = {
            "open": self._op_open,
            "edit": self._op_edit,
            "rank": self._op_rank,
            "audit": self._op_audit,
            "subscribe": self._op_subscribe,
            "unsubscribe": self._op_unsubscribe,
            "standing": self._op_standing,
            "close": self._op_close,
            "stats": self._op_stats,
            "hello": self._op_hello,
            "health": self._op_health,
        }
        if self.protocol_version >= 2:
            # Additive v2 op; a protocol_version=1 service emulates a
            # pre-observability worker and must not advertise it.
            self._ops["metrics"] = self._op_metrics

    # ------------------------------------------------------------------
    @property
    def supports_frames(self) -> bool:
        """Whether this service speaks the v2 binary framed wire."""
        return self.protocol_version >= 2

    @property
    def supported_versions(self) -> tuple[int, ...]:
        return tuple(
            v
            for v in protocol.SUPPORTED_VERSIONS
            if v <= self.protocol_version
        )

    def handle(self, request: dict) -> dict:
        """Process one request dict; always returns a response dict.

        The response is stamped in the request's own version — a v1
        request gets a v1 response even from a v2 service, which is
        what keeps mixed-version worker pools interoperable. Every
        request is metered (count, latency, error code by op) into the
        process metrics registry, and a v2 request carrying a
        ``trace_id`` gets its handler spans piggybacked back on the
        response's additive ``spans`` field.
        """
        self.requests_handled += 1
        op = request.get("op") if isinstance(request, dict) else None
        op_label = op if op in self._ops else "unknown"
        watch = Stopwatch()
        response = self._dispatch_request(request)
        _REQUEST_SECONDS.observe(watch.s, op=op_label)
        _REQUESTS.inc(op=op_label)
        if not response.get("ok"):
            error = response.get("error")
            code = (
                error.get("code", protocol.INTERNAL_ERROR)
                if isinstance(error, dict)
                else "legacy"  # v0 dialect: a bare string error
            )
            _ERRORS.inc(op=op_label, code=code)
        return response

    def _dispatch_request(self, request: dict) -> dict:
        """Negotiate, dispatch, and classify one request (unmetered)."""
        try:
            version = protocol.negotiate_version(
                request, self.accept_legacy, supported=self.supported_versions
            )
        except protocol.ProtocolError as exc:
            return protocol.error_response(
                exc.code,
                exc.message,
                details=exc.details,
                version=self.protocol_version,
            )
        try:
            op = request.get("op")
            handler = self._ops.get(op)
            if handler is None:
                raise protocol.ProtocolError(
                    protocol.UNKNOWN_OP,
                    f"unknown op {op!r}; expected one of "
                    f"{', '.join(sorted(self._ops))}",
                )
            payload = self._run_traced(op, handler, request, version)
        except Exception as exc:  # protocol boundary: report, don't die
            error = protocol.classify_exception(exc)
            if version == protocol.LEGACY_VERSION:
                # v0 dialect: the error is a bare string.
                return {"ok": False, "error": error.message}
            return protocol.error_response(
                error.code, error.message, details=error.details,
                version=version,
            )
        if version == protocol.LEGACY_VERSION:
            return {"ok": True, **payload}
        return protocol.ok_response(payload, version=version)

    def _run_traced(self, op, handler, request: dict, version: int) -> dict:
        """Run a handler, honoring the request's additive trace fields.

        A v2 request carrying ``trace_id`` runs under a local
        ``worker.<op>`` root span — parented on the coordinator's
        ``parent_span`` when given — and its recorded spans ride back
        on the response payload's ``spans`` field, where the
        coordinator stitches them into the audit's trace. Requests
        without a trace id (and all v1 traffic) dispatch untouched.
        """
        trace_id = request.get("trace_id")
        if version < 2 or not isinstance(trace_id, str) or not trace_id:
            return handler(request)
        local = obs_trace.Trace(trace_id)
        parent = request.get("parent_span")
        with obs_trace.activate(local):
            with obs_trace.span(
                f"worker.{op}",
                parent=parent if isinstance(parent, str) else None,
            ):
                payload = handler(request)
        payload = dict(payload)
        payload["spans"] = local.span_dicts()
        return payload

    def serve(self, lines, out) -> int:
        """Line-delimited JSON loop: one request per input line.

        Returns the number of requests handled. Blank lines are
        skipped; unparseable lines produce an error response like any
        other bad request (in the v0 dialect when legacy requests are
        accepted — an undecodable line has no version to negotiate).
        """
        handled = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                if self.accept_legacy:
                    response = {"ok": False, "error": f"bad JSON: {exc}"}
                else:
                    response = protocol.error_response(
                        protocol.BAD_JSON, f"bad JSON: {exc}"
                    )
            else:
                response = self.handle(_sanitize_wire_request(request))
            out.write(json.dumps(response) + "\n")
            out.flush()
            handled += 1
        return handled

    def handle_frame(
        self, header: dict, blobs: list[bytes]
    ) -> tuple[dict, list[bytes]]:
        """Process one framed request: ingest scene blobs, dispatch.

        Blobs are packed scenes (:func:`repro.api.frames.pack_scene`);
        each is hashed and decoded into the scene cache *before* the
        request dispatches, so an ``audit`` naming their hashes
        resolves immediately. An undecodable blob fails just this
        request — the frame itself was well-formed, the stream stays
        in sync.
        """
        if not isinstance(header, dict):
            return (
                protocol.error_response(
                    protocol.BAD_REQUEST,
                    "frame header must be a request object",
                    version=self.protocol_version,
                ),
                [],
            )
        header = _sanitize_wire_request(header)
        if blobs:
            ingested = {}
            try:
                for blob in blobs:
                    fingerprint, scene = self.scene_cache.ingest(blob)
                    ingested[fingerprint] = scene
            except protocol.TransportError as exc:
                return (
                    protocol.error_response(
                        exc.code, exc.message, version=self.protocol_version
                    ),
                    [],
                )
            header = dict(header)
            # Internal plumbing (never a wire field): the decoded
            # scenes of this request's blobs, held so resolution works
            # even when the LRU is smaller than one request, plus the
            # per-request hit/miss accounting.
            header["_ingested_scenes"] = ingested
        return self.handle(header), []

    def serve_frames(self, reader, writer) -> int:
        """Binary framed loop: one frame in, one frame out, until EOF.

        ``reader``/``writer`` are binary streams. Frame-level failures
        that leave the stream unsynced (truncation, bad magic, a
        declared size over the caps) end the conversation — after a
        best-effort error frame for decodable-but-refused cases;
        per-request failures are ordinary error responses and the loop
        continues.
        """
        handled = 0
        while True:
            try:
                frame = frames.read_frame(reader, allow_eof=True)
            except protocol.StreamClosedError:
                break  # peer died mid-frame: nothing left to answer
            except protocol.TransportError as exc:
                # Malformed/oversized: report once, then stop — the
                # byte stream can no longer be trusted to re-sync.
                try:
                    frames.write_frame(
                        writer,
                        protocol.error_response(
                            exc.code,
                            exc.message,
                            version=self.protocol_version,
                        ),
                    )
                except OSError:
                    pass
                break
            if frame is None:
                break
            header, blobs = frame
            response, out_blobs = self.handle_frame(header, blobs)
            try:
                frames.write_frame(writer, response, tuple(out_blobs))
            except (OSError, ValueError):
                break  # peer gone mid-response
            handled += 1
        return handled

    # ------------------------------------------------------------------
    def _op_open(self, request: dict) -> dict:
        scene = Scene.from_dict(request["scene"])
        session = self.store.open(scene, session_id=request.get("session_id"))
        return {
            "session_id": session.session_id,
            "n_tracks": len(scene.tracks),
            "version": session.version,
        }

    def _op_edit(self, request: dict) -> dict:
        edit = edit_from_dict(request["edit"])
        session = self.store.get(request["session_id"])
        changed = session.apply(edit)
        payload = {"changed": sorted(changed), "version": session.version}
        if request.get("standing", True):
            audits = session.standing_audits()
            if audits:
                # The edit already maintained every subscription (the
                # delta-rescore hook runs inside apply); this just
                # reads the fresh top-k back out — no extra rescoring.
                payload["standing"] = {
                    audit.audit_id: {
                        "kind": audit.kind,
                        "rescored": audit.last_rescored,
                        "results": audit.results_dicts(),
                    }
                    for audit in audits
                }
        return payload

    def _op_rank(self, request: dict) -> dict:
        kind = request.get("kind", "tracks")
        top_k = request.get("top_k")
        ranked = self.store.rank(
            request["session_id"], kind=kind,
            top_k=int(top_k) if top_k is not None else None,
        )
        return {
            "kind": kind,
            "results": [s.to_dict(kind) for s in ranked],
        }

    def _op_audit(self, request: dict) -> dict:
        """Execute an AuditSpec server-side (live session or shipped scenes)."""
        from repro.api import API_VERSION, Audit, AuditSpec
        from repro.api.result import AuditProvenance, AuditResult

        spec = AuditSpec.from_dict(request["spec"])
        session_id = request.get("session_id")
        if session_id is not None:
            # Rank the live session's already-spliced state directly —
            # the session *is* the session backend, minus a recompile.
            session = self.store.get(session_id)
            with obs_trace.span(
                "rank", attrs={"backend": "session"}
            ):
                watch = Stopwatch()
                items = session.rank(
                    spec.kind, spec.compile_filter(), top_k=spec.top_k
                )
                rank_s = watch.s
            learned = self.store.fixy.learned
            result = AuditResult(
                items=items,
                spec=spec,
                provenance=AuditProvenance(
                    backend="session",
                    spec_hash=spec.spec_hash(),
                    model_fingerprint=(
                        learned.fingerprint() if learned is not None else None
                    ),
                    n_scenes=1,
                    api_version=API_VERSION,
                    timings={"rank_s": rank_s, "total_s": rank_s},
                ),
            )
        else:
            cache_stats = None
            hashes = request.get("scene_hashes")
            if hashes is not None:
                scenes, cache_stats, missing = self._resolve_scene_hashes(
                    hashes, request.get("_ingested_scenes")
                )
                if missing:
                    # Not an error: the coordinator resends only these
                    # bodies (cache eviction, or a restarted worker).
                    return {"need": missing}
            else:
                scenes = [Scene.from_dict(d) for d in request["scenes"]]
            with Audit(spec, fixy=self.store.fixy) as audit:
                result = audit.run(scenes=scenes)
            if cache_stats is not None:
                return {"result": result.to_dict(), "scene_cache": cache_stats}
        return {"result": result.to_dict()}

    def _resolve_scene_hashes(self, hashes, ingested):
        """Resolve content hashes against the scene cache (+ warehouse).

        Returns ``(scenes, {"hits", "misses"}, missing_hashes)`` —
        a *hit* is a hash served from cache without a body this
        request, a *miss* one whose body just arrived as a blob. With a
        shared warehouse configured, cache misses fetch the blob by
        fingerprint locally (counted as hits, plus an additive
        ``warehouse`` sub-count) before falling back to ``need``; a
        corrupt or absent warehouse entry degrades to ``need`` — the
        coordinator reships the body.
        """
        if self.protocol_version < 2:
            raise protocol.ProtocolError(
                protocol.BAD_REQUEST,
                "scene_hashes need protocol v2; this worker speaks "
                f"v{self.protocol_version}",
            )
        ingested = dict(ingested or {})
        scenes, missing = [], []
        hits = misses = warehouse_fetches = 0
        for fingerprint in hashes:
            scene = ingested.get(fingerprint)
            if scene is not None:
                scenes.append(scene)
                misses += 1  # body shipped with this request
                continue
            scene = self.scene_cache.get(fingerprint)
            if scene is not None:
                scenes.append(scene)
                hits += 1
                continue
            if self.warehouse is not None:
                from repro.warehouse import WarehouseError

                try:
                    blob = self.warehouse.get_blob(fingerprint)
                except WarehouseError:
                    blob = None
                if blob is not None:
                    _, scene = self.scene_cache.ingest(blob)
                    scenes.append(scene)
                    hits += 1
                    warehouse_fetches += 1
                    continue
            missing.append(fingerprint)
        stats = {"hits": hits, "misses": misses}
        if self.warehouse is not None:
            stats["warehouse"] = warehouse_fetches
        return scenes, stats, missing

    def _op_subscribe(self, request: dict) -> dict:
        """Register an AuditSpec as a standing query on a live session."""
        from repro.api import AuditSpec

        spec = AuditSpec.from_dict(request["spec"])
        try:
            audit = self.store.subscribe(
                request["session_id"], spec, audit_id=request.get("audit_id")
            )
        except RuntimeError as exc:
            # The per-session subscription limit: the client asked for
            # too much, not a server fault.
            raise protocol.ProtocolError(protocol.BAD_REQUEST, str(exc))
        return {
            "audit_id": audit.audit_id,
            "kind": audit.kind,
            "results": audit.results_dicts(),
        }

    def _op_unsubscribe(self, request: dict) -> dict:
        unsubscribed = self.store.unsubscribe(
            request["session_id"], request["audit_id"]
        )
        return {"unsubscribed": unsubscribed}

    def _op_standing(self, request: dict) -> dict:
        """Read a standing audit's maintained top-k (no edit needed)."""
        audit = self.store.standing(
            request["session_id"], request["audit_id"]
        )
        return {
            "audit_id": audit.audit_id,
            "kind": audit.kind,
            "results": audit.results_dicts(),
            "stats": audit.stats.to_dict(),
        }

    def _op_close(self, request: dict) -> dict:
        return {"closed": self.store.close(request["session_id"])}

    def _op_stats(self, request: dict) -> dict:
        return self.store.stats()

    def _op_hello(self, request: dict) -> dict:
        """Worker registration: who am I, what do I serve, how much.

        The worker pool (:mod:`repro.api.pool`) calls this once per
        worker before dispatching scenes — the fingerprint is how a
        coordinator proves every worker scores with the *same* model
        (the byte-identity precondition across machines).
        """
        learned = self.store.fixy.learned
        # ``protocol_version`` mirrors the *request's* dialect: a PR-4
        # coordinator hellos at v1 and requires this field to equal 1,
        # so an upgraded worker must keep answering 1 there or every
        # deployed pool rejects it mid-rolling-upgrade. The worker's
        # actual ceiling travels in the additive ``max_protocol_version``
        # field, which current pools use to negotiate up.
        request_version = request.get("v")
        if not isinstance(request_version, int) or request_version < 1:
            request_version = protocol.BASELINE_VERSION
        return {
            "protocol_version": min(request_version, self.protocol_version),
            "max_protocol_version": self.protocol_version,
            "model_fingerprint": (
                learned.fingerprint() if learned is not None else None
            ),
            "capacity": self.capacity,
            "features": [f.name for f in self.store.fixy.features],
            "ops": sorted(self._ops),
            "wire_formats": (
                ["json", "frames"] if self.supports_frames else ["json"]
            ),
            "scene_cache": (
                self.scene_cache.maxsize if self.supports_frames else 0
            ),
            "warehouse": self.warehouse is not None,
        }

    def _op_health(self, request: dict) -> dict:
        """Liveness + stats: cheap enough to poll between audits.

        ``metrics`` is the compact counter-totals summary of the
        process registry — additive, so pre-observability pools that
        only read ``capacity``/``status`` keep working untouched.
        """
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started,
            "requests_handled": self.requests_handled,
            "capacity": self.capacity,
            "scene_cache": self.scene_cache.stats(),
            "metrics": obs_metrics.get_registry().summary(),
            **self.store.stats(),
        }

    def _op_metrics(self, request: dict) -> dict:
        """The full metrics snapshot (protocol v2+; additive op).

        A v1 *client* asking for it gets a typed
        ``unsupported_version`` — distinguishable from the
        ``unknown_op`` a pre-observability worker answers, so callers
        can tell "too old to speak v2" from "too old to have metrics".
        Pass ``text`` truthy for the Prometheus exposition alongside
        the structured snapshot.
        """
        version = request.get("v")
        if not isinstance(version, int) or version < 2:
            raise protocol.ProtocolError(
                protocol.UNSUPPORTED_VERSION,
                "the metrics op needs protocol v2; this request is "
                f"v{version!r}",
            )
        registry = obs_metrics.get_registry()
        payload = {"metrics": registry.snapshot()}
        if request.get("text"):
            payload["text"] = registry.render()
        return payload
