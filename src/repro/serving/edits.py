"""Scene edits: the delta language of the streaming serving layer.

Every edit is a small, immutable description of one mutation to a
:class:`~repro.core.model.Scene` — a track appearing or disappearing, a
new sensor frame extending a track, an observation being corrected. An
edit knows how to apply itself (:meth:`SceneEdit.apply`) and reports the
ids of every track whose compiled representation it invalidated; that
set is exactly what :class:`~repro.serving.session.SceneSession` feeds
into delta recompilation.

Edits also round-trip through plain dicts (:meth:`SceneEdit.to_dict` /
:func:`edit_from_dict`) so they can ride the JSON protocol of
:class:`~repro.serving.service.StreamingService`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.model import Observation, ObservationBundle, Scene, Track

__all__ = [
    "SceneEdit",
    "InsertTrack",
    "RemoveTrack",
    "InsertBundle",
    "RemoveBundle",
    "InsertObservation",
    "RemoveObservation",
    "ReplaceObservation",
    "edit_from_dict",
]


class SceneEdit(ABC):
    """One mutation of a scene.

    ``apply`` mutates the scene in place and returns the set of track
    ids whose compiled state the edit invalidated (removed tracks
    included — the session drops their segments).
    """

    #: dict tag used by :meth:`to_dict` / :func:`edit_from_dict`.
    op: str

    @abstractmethod
    def apply(self, scene: Scene) -> set[str]:
        """Apply the edit; returns the changed track ids."""

    @abstractmethod
    def to_dict(self) -> dict:
        """JSON-safe representation (``{"op": ..., ...}``)."""


def _track_of(scene: Scene, track_id: str) -> Track:
    for track in scene.tracks:
        if track.track_id == track_id:
            return track
    raise KeyError(f"no track {track_id!r} in scene {scene.scene_id!r}")


def _find_observation(
    track: Track, obs_id: str
) -> tuple[ObservationBundle, int]:
    for bundle in track.bundles:
        for i, obs in enumerate(bundle.observations):
            if obs.obs_id == obs_id:
                return bundle, i
    raise KeyError(f"no observation {obs_id!r} in track {track.track_id!r}")


@dataclass(frozen=True)
class InsertTrack(SceneEdit):
    """Append a new track to the scene (a new object entering)."""

    track: Track
    op = "insert_track"

    def apply(self, scene: Scene) -> set[str]:
        if any(t.track_id == self.track.track_id for t in scene.tracks):
            raise ValueError(
                f"track {self.track.track_id!r} already exists in "
                f"scene {scene.scene_id!r}"
            )
        scene.tracks.append(self.track)
        return {self.track.track_id}

    def to_dict(self) -> dict:
        return {"op": self.op, "track": self.track.to_dict()}


@dataclass(frozen=True)
class RemoveTrack(SceneEdit):
    """Remove a whole track (object left, or track rejected)."""

    track_id: str
    op = "remove_track"

    def apply(self, scene: Scene) -> set[str]:
        track = _track_of(scene, self.track_id)
        scene.tracks.remove(track)
        return {self.track_id}

    def to_dict(self) -> dict:
        return {"op": self.op, "track_id": self.track_id}


@dataclass(frozen=True)
class InsertBundle(SceneEdit):
    """Attach a new observation bundle to a track (a new frame)."""

    track_id: str
    bundle: ObservationBundle
    op = "insert_bundle"

    def apply(self, scene: Scene) -> set[str]:
        _track_of(scene, self.track_id).add(self.bundle)
        return {self.track_id}

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "track_id": self.track_id,
            "bundle": self.bundle.to_dict(),
        }


@dataclass(frozen=True)
class RemoveBundle(SceneEdit):
    """Drop a track's bundle at one frame."""

    track_id: str
    frame: int
    op = "remove_bundle"

    def apply(self, scene: Scene) -> set[str]:
        track = _track_of(scene, self.track_id)
        bundle = track.bundle_at(self.frame)
        if bundle is None:
            raise KeyError(
                f"track {self.track_id!r} has no bundle at frame {self.frame}"
            )
        track.bundles.remove(bundle)
        return {self.track_id}

    def to_dict(self) -> dict:
        return {"op": self.op, "track_id": self.track_id, "frame": self.frame}


@dataclass(frozen=True)
class InsertObservation(SceneEdit):
    """Add one observation to a track — the streaming-frame workhorse.

    Joins the track's bundle at ``observation.frame`` when one exists,
    else creates a fresh single-observation bundle at that frame.
    """

    track_id: str
    observation: Observation
    op = "insert_observation"

    def apply(self, scene: Scene) -> set[str]:
        track = _track_of(scene, self.track_id)
        bundle = track.bundle_at(self.observation.frame)
        if bundle is None:
            track.add(
                ObservationBundle(
                    frame=self.observation.frame,
                    observations=[self.observation],
                )
            )
        else:
            bundle.add(self.observation)
        return {self.track_id}

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "track_id": self.track_id,
            "observation": self.observation.to_dict(),
        }


@dataclass(frozen=True)
class RemoveObservation(SceneEdit):
    """Remove one observation; a bundle left empty disappears with it."""

    track_id: str
    obs_id: str
    op = "remove_observation"

    def apply(self, scene: Scene) -> set[str]:
        track = _track_of(scene, self.track_id)
        bundle, index = _find_observation(track, self.obs_id)
        del bundle.observations[index]
        if not bundle.observations:
            track.bundles.remove(bundle)
        return {self.track_id}

    def to_dict(self) -> dict:
        return {"op": self.op, "track_id": self.track_id, "obs_id": self.obs_id}


@dataclass(frozen=True)
class ReplaceObservation(SceneEdit):
    """Swap one observation for a corrected one at the same frame.

    ``Observation`` is frozen, so mutation is modeled as replacement;
    the new observation must keep the old one's frame (moving across
    frames is a remove + insert).
    """

    track_id: str
    obs_id: str
    observation: Observation
    op = "replace_observation"

    def apply(self, scene: Scene) -> set[str]:
        track = _track_of(scene, self.track_id)
        bundle, index = _find_observation(track, self.obs_id)
        if self.observation.frame != bundle.frame:
            raise ValueError(
                f"replacement frame {self.observation.frame} != bundle "
                f"frame {bundle.frame}; use RemoveObservation + "
                "InsertObservation to move across frames"
            )
        bundle.observations[index] = self.observation
        return {self.track_id}

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "track_id": self.track_id,
            "obs_id": self.obs_id,
            "observation": self.observation.to_dict(),
        }


_EDIT_TYPES: dict[str, type[SceneEdit]] = {
    cls.op: cls
    for cls in (
        InsertTrack,
        RemoveTrack,
        InsertBundle,
        RemoveBundle,
        InsertObservation,
        RemoveObservation,
        ReplaceObservation,
    )
}


def edit_from_dict(data: dict) -> SceneEdit:
    """Reconstruct an edit serialized by :meth:`SceneEdit.to_dict`."""
    op = data.get("op")
    cls = _EDIT_TYPES.get(op)
    if cls is None:
        raise ValueError(
            f"unknown edit op {op!r}; expected one of {sorted(_EDIT_TYPES)}"
        )
    if cls is InsertTrack:
        return InsertTrack(track=Track.from_dict(data["track"]))
    if cls is RemoveTrack:
        return RemoveTrack(track_id=data["track_id"])
    if cls is InsertBundle:
        return InsertBundle(
            track_id=data["track_id"],
            bundle=ObservationBundle.from_dict(data["bundle"]),
        )
    if cls is RemoveBundle:
        return RemoveBundle(track_id=data["track_id"], frame=int(data["frame"]))
    if cls is InsertObservation:
        return InsertObservation(
            track_id=data["track_id"],
            observation=Observation.from_dict(data["observation"]),
        )
    if cls is RemoveObservation:
        return RemoveObservation(
            track_id=data["track_id"], obs_id=data["obs_id"]
        )
    return ReplaceObservation(
        track_id=data["track_id"],
        obs_id=data["obs_id"],
        observation=Observation.from_dict(data["observation"]),
    )
