"""SessionStore: many concurrent scene sessions with LRU eviction.

A long-lived server holds one :class:`~repro.serving.session.SceneSession`
per active scene (per vehicle, per labeling job, …). Sessions pin their
compiled arrays in memory, so the store bounds the population with an
LRU policy: opening a session beyond ``max_sessions`` evicts the least
recently *used* one (any touch — edit or query — refreshes recency).
Evicted scenes are not lost; re-opening one simply pays a fresh
compile, exactly like a cold cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.model import Scene
from repro.core.scoring import ScoredItem
from repro.serving.edits import SceneEdit
from repro.serving.session import SceneSession

__all__ = ["SessionStore"]


class SessionStore:
    """LRU-bounded collection of live scene sessions.

    Args:
        fixy: A fitted :class:`~repro.core.engine.Fixy` supplying the
            feature set, AOFs, and learned model every session uses.
        max_sessions: Live-session bound (≥ 1).
        max_standing: Per-session standing-audit bound
            (:class:`~repro.serving.session.SceneSession`'s
            ``max_standing``).
    """

    def __init__(self, fixy, max_sessions: int = 32, max_standing: int = 16):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        fixy._require_fitted()
        if not fixy.vectorized:
            raise ValueError(
                "sessions require the columnar pipeline; this engine was "
                "built with vectorized=False"
            )
        self.fixy = fixy
        self.max_sessions = int(max_sessions)
        self.max_standing = int(max_standing)
        self._sessions: OrderedDict[str, SceneSession] = OrderedDict()
        self._lock = threading.Lock()
        self.sessions_opened = 0
        self.sessions_evicted = 0

    # ------------------------------------------------------------------
    def open(self, scene: Scene, session_id: str | None = None) -> SceneSession:
        """Create (and register) a session for ``scene``.

        Re-opening an existing id replaces the old session — the caller
        is handing us a new authoritative scene state.
        """
        session = SceneSession(
            scene,
            self.fixy.features,
            learned=self.fixy.learned,
            aofs=self.fixy.aofs,
            session_id=session_id,
            # Edits mutate the scene in place; keep the engine's
            # identity-keyed compile cache from serving stale state.
            on_invalidate=lambda: self.fixy._evict_scene(scene),
            max_standing=self.max_standing,
        )
        with self._lock:
            self._sessions[session.session_id] = session
            self._sessions.move_to_end(session.session_id)
            self.sessions_opened += 1
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self.sessions_evicted += 1
        return session

    def get(self, session_id: str) -> SceneSession:
        """Look up a live session (refreshing its recency)."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise KeyError(f"no live session {session_id!r}")
            self._sessions.move_to_end(session_id)
            return session

    def close(self, session_id: str) -> bool:
        """Drop a session; returns whether it was live."""
        with self._lock:
            return self._sessions.pop(session_id, None) is not None

    # ------------------------------------------------------------------
    def apply(self, session_id: str, edit: SceneEdit) -> set[str]:
        """Apply an edit to a live session (delta recompilation)."""
        return self.get(session_id).apply(edit)

    def rank(
        self,
        session_id: str,
        kind: str = "tracks",
        filt=None,
        top_k: int | None = None,
    ) -> list[ScoredItem]:
        """Rank one session's components (``kind`` ∈ tracks/bundles/observations)."""
        return self.get(session_id).rank(kind, filt, top_k=top_k)

    # ------------------------------------------------------------------
    def subscribe(self, session_id: str, spec, audit_id: str | None = None):
        """Subscribe a standing audit on a live session."""
        return self.get(session_id).subscribe(spec, audit_id=audit_id)

    def unsubscribe(self, session_id: str, audit_id: str) -> bool:
        """Drop a session's standing audit; whether it was subscribed."""
        return self.get(session_id).unsubscribe(audit_id)

    def standing(self, session_id: str, audit_id: str):
        """Look up a live session's standing audit."""
        return self.get(session_id).standing_audit(audit_id)

    # ------------------------------------------------------------------
    @property
    def session_ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def stats(self) -> dict:
        with self._lock:
            sessions = list(self._sessions.values())
        return {
            "live_sessions": len(sessions),
            "max_sessions": self.max_sessions,
            "sessions_opened": self.sessions_opened,
            "sessions_evicted": self.sessions_evicted,
            "edits_applied": sum(s.stats.edits_applied for s in sessions),
            "tracks_recompiled": sum(s.stats.tracks_recompiled for s in sessions),
            "standing_audits": sum(len(s.standing_audits()) for s in sessions),
            "standing_tracks_rescored": sum(
                a.stats.tracks_rescored
                for s in sessions
                for a in s.standing_audits()
            ),
        }
