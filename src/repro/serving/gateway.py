"""Async gateway: the event-loop serving front with admission control.

The threaded front (:mod:`repro.serving.tcp`) spends one handler
thread per connection — fine for a worker pool of tens of peers,
unworkable for the ROADMAP's "heavy traffic from millions of users"
fan-in, where most connections are idle most of the time. This module
multiplexes thousands of client connections on **one asyncio event
loop** and keeps the actual request handling on the existing, already
byte-exact :class:`~repro.serving.service.StreamingService`:

- **Wire compatibility.** Both existing wires are spoken unchanged and
  detected per connection by the first byte, exactly as the threaded
  front does: :data:`repro.api.frames.MAGIC` opens the v2 binary
  framed conversation (read with
  :func:`repro.api.frames.read_frame_async`), anything else is
  line-delimited JSON (v0/v1/v2 dialects all ride it). Responses per
  connection come back in request order — the pipelining contract both
  wires already promise.

- **Bounded execution.** Decoded requests dispatch to a worker-thread
  executor of ``max_inflight`` threads running ``service.handle`` /
  ``service.handle_frame`` — every op's response is byte-identical to
  the threaded path because it *is* the threaded path, minus the
  per-connection thread.

- **Admission control.** Work past the executor queues; once the queue
  depth reaches ``max_queue`` (or one connection exceeds its
  ``client_budget`` of in-flight requests, or the gateway is
  draining), the request is answered immediately with the typed
  ``overloaded`` protocol code instead of stalling — never a hang,
  never a silent drop. v1 peers get it as an ordinary structured
  error; v0 peers get the legacy string dialect. ``details`` carries
  ``reason`` plus the queue state so clients can back off sensibly
  (client-side it raises :class:`repro.api.protocol.OverloadedError`).

- **Compile coalescing.** Concurrent ``audit`` requests naming the
  same ``scene_hashes`` under the same spec and model fingerprint —
  the same key the warehouse compiled-columns sidecar uses
  (``scene_fingerprint`` × model fingerprint) — attach to the one
  in-flight response future instead of re-executing: a same-scene
  burst costs one compile, not N. Only hash-naming, session-less,
  trace-less audits coalesce (anything else is stateful or carries
  per-request payloads).

- **Graceful drain.** Shutdown stops accepting, sheds new requests
  with ``overloaded`` (reason ``draining``), waits up to
  ``drain_timeout`` for in-flight work to finish and flush, then
  closes the remaining connections.

Instrumented via :mod:`repro.obs.metrics` (names are API — see
docs/API.md "Observability"): connection/queue-depth gauges,
shed/coalesce counters, per-op latency histograms.

Entry points mirror the threaded front: ``cli serve --listen HOST:PORT
--async`` runs :class:`AsyncGateway` in the foreground;
:class:`GatewayWorker` is the in-process convenience (gateway + event
loop + daemon thread) that tests and benchmarks stand up like a
:class:`~repro.serving.tcp.TcpWorker`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from functools import partial

from repro.api import frames, protocol
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import Stopwatch
from repro.serving.service import StreamingService, _sanitize_wire_request

__all__ = ["AsyncGateway", "GatewayWorker", "MAX_LINE_BYTES"]

#: Stream buffer limit for the line-JSON wire (a whole request is one
#: line; asyncio's 64 KiB default would refuse legitimate scene
#: payloads long before the framed wire's 16 MiB header cap).
MAX_LINE_BYTES = 64 * 1024 * 1024

# Gateway metrics (names are API — docs/API.md, "Observability").
_CONNECTIONS = obs_metrics.gauge(
    "repro_gateway_connections", "Live gateway client connections"
)
_QUEUE_DEPTH = obs_metrics.gauge(
    "repro_gateway_queue_depth",
    "Admitted requests waiting for an executor slot",
)
_GW_REQUESTS = obs_metrics.counter(
    "repro_gateway_requests_total",
    "Requests arriving at the gateway (admitted or shed), by op",
    labelnames=("op",),
)
_SHED = obs_metrics.counter(
    "repro_gateway_shed_total",
    "Requests answered with the overloaded code, by admission reason",
    labelnames=("reason",),
)
_COALESCE = obs_metrics.counter(
    "repro_gateway_coalesce_total",
    "Coalescable audit dispatches, by outcome (lead = executed, "
    "hit = attached to an in-flight lead)",
    labelnames=("outcome",),
)
_GW_SECONDS = obs_metrics.histogram(
    "repro_gateway_request_seconds",
    "Admission-to-completion latency of executed requests, by op",
    labelnames=("op",),
)

_SHED_MESSAGES = {
    "queue_full": "gateway queue is full; back off and retry",
    "client_budget": "connection exceeded its in-flight request budget",
    "draining": "gateway is draining for shutdown; retry elsewhere",
}


class _ClientState:
    """Per-connection admission accounting."""

    __slots__ = ("inflight",)

    def __init__(self):
        self.inflight = 0


class AsyncGateway:
    """One event loop multiplexing many clients over one service.

    Args:
        service: The :class:`StreamingService` every request dispatches
            to (its handlers define the byte-exact response surface).
        host/port: Listen address (port 0 picks a free port; read the
            result from :attr:`address` after :meth:`start`).
        max_inflight: Worker threads executing service handlers — the
            concurrency of actual request handling.
        max_queue: Admitted-but-not-yet-executing requests allowed
            before new arrivals are shed with ``overloaded``.
        client_budget: In-flight requests one connection may have
            before its next request is shed with ``overloaded``.
        drain_timeout: Seconds :meth:`shutdown` waits for in-flight
            work to finish and flush before force-closing connections.

    All state is event-loop-confined; the only cross-thread traffic is
    the executor running service handlers (the service itself is
    thread-safe — it already serves the threaded front).
    """

    def __init__(
        self,
        service: StreamingService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 4,
        max_queue: int = 64,
        client_budget: int = 16,
        drain_timeout: float = 5.0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.max_inflight = max(1, int(max_inflight))
        self.max_queue = max(0, int(max_queue))
        self.client_budget = max(1, int(client_budget))
        self.drain_timeout = float(drain_timeout)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._executor = None
        self._bound: tuple[str, int] | None = None
        self._draining = False
        self._inflight = 0  # admitted leads not yet completed
        self._unwritten = 0  # responses enqueued but not yet written
        self._compiles: dict[tuple, asyncio.Future] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._model_fp: str | None | bool = False  # False = not resolved yet
        self.requests_shed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str | None:
        """The bound ``"host:port"``, or ``None`` before :meth:`start`."""
        if self._bound is None:
            return None
        return f"{self._bound[0]}:{self._bound[1]}"

    async def start(self) -> None:
        """Bind the listener on the running event loop."""
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="gateway-exec"
        )
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        _QUEUE_DEPTH.set(0)

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._loop.time() + self.drain_timeout
        while (self._inflight or self._unwritten) and (
            self._loop.time() < deadline
        ):
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=1.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then drain and shut down."""
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        _CONNECTIONS.inc()
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                # Same rationale as the threaded front: one small
                # response per request must not sit out Nagle+delayed-ACK.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        conn = _ClientState()
        queue: asyncio.Queue = asyncio.Queue()
        pump = asyncio.create_task(self._write_responses(queue, writer))
        try:
            first = await reader.read(1)
            if first:
                if first == frames.MAGIC[:1] and self.service.supports_frames:
                    await self._read_frames(conn, reader, queue, first)
                else:
                    await self._read_lines(conn, reader, queue, first)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            await queue.put(None)
            try:
                await pump
            except asyncio.CancelledError:
                pass
            self._writers.discard(writer)
            self._conn_tasks.discard(task)
            _CONNECTIONS.dec()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _write_responses(self, queue, writer) -> None:
        """One per connection: write responses in request order.

        Each item is ``(future, framed)``; the future always resolves
        to a response dict (dispatch converts failures into error
        responses). A broken peer stops the writing but keeps
        consuming, so admission accounting still completes.
        """
        peer_alive = True
        while True:
            item = await queue.get()
            if item is None:
                return
            fut, framed = item
            try:
                response = await fut
            except Exception as exc:  # belt: dispatch never raises
                err = protocol.classify_exception(exc)
                response = protocol.error_response(
                    err.code, err.message,
                    version=self.service.protocol_version,
                )
            finally:
                self._unwritten -= 1
            if not peer_alive:
                continue
            if framed:
                data = frames.encode_frame(response)
            else:
                data = (json.dumps(response) + "\n").encode("utf-8")
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                peer_alive = False

    async def _enqueue(self, queue, fut, framed: bool) -> None:
        self._unwritten += 1
        await queue.put((fut, framed))

    async def _read_lines(self, conn, reader, queue, first: bytes) -> None:
        """The line-JSON loop, mirroring ``StreamingService.serve``."""
        pending_first = first
        while True:
            if pending_first is not None and pending_first not in (
                b"\n",
                b"\r",
            ):
                try:
                    line = pending_first + await reader.readline()
                except ValueError:  # line over the stream limit
                    await self._refuse_oversized_line(queue)
                    return
            else:
                if pending_first is None:
                    try:
                        line = await reader.readline()
                    except ValueError:
                        await self._refuse_oversized_line(queue)
                        return
                else:
                    line = pending_first  # a lone blank byte: skip it
            pending_first = None
            if not line:
                return  # clean EOF
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                request = json.loads(text)
            except json.JSONDecodeError as exc:
                # Same dialect choice as StreamingService.serve: an
                # undecodable line has no version to negotiate.
                if self.service.accept_legacy:
                    response = {"ok": False, "error": f"bad JSON: {exc}"}
                else:
                    response = protocol.error_response(
                        protocol.BAD_JSON, f"bad JSON: {exc}"
                    )
                await self._enqueue(
                    queue, self._completed(response), framed=False
                )
                continue
            fut = self._dispatch(
                conn, _sanitize_wire_request(request), blobs=None
            )
            await self._enqueue(queue, fut, framed=False)

    async def _refuse_oversized_line(self, queue) -> None:
        """A line past the buffer limit cannot be resynced: one typed
        error, then the connection ends (mirrors the framed wire's
        oversized-frame contract)."""
        response = protocol.error_response(
            protocol.FRAME_TOO_LARGE,
            f"request line exceeds {MAX_LINE_BYTES} bytes",
            version=self.service.protocol_version,
        )
        await self._enqueue(queue, self._completed(response), framed=False)

    async def _read_frames(self, conn, reader, queue, first: bytes) -> None:
        """The framed loop, mirroring ``StreamingService.serve_frames``."""
        prefix = first
        while True:
            try:
                frame = await frames.read_frame_async(
                    reader, allow_eof=True, prefix=prefix
                )
            except protocol.StreamClosedError:
                return  # peer died mid-frame: nothing left to answer
            except protocol.TransportError as exc:
                # Malformed/oversized: report once, then stop — the
                # stream can no longer be trusted to re-sync.
                response = protocol.error_response(
                    exc.code, exc.message,
                    version=self.service.protocol_version,
                )
                await self._enqueue(
                    queue, self._completed(response), framed=True
                )
                return
            prefix = b""
            if frame is None:
                return
            header, blobs = frame
            fut = self._dispatch(conn, header, blobs=blobs)
            await self._enqueue(queue, fut, framed=True)

    # ------------------------------------------------------------------
    # Admission + dispatch
    # ------------------------------------------------------------------
    def _queue_depth(self) -> int:
        return max(0, self._inflight - self.max_inflight)

    def _dispatch(self, conn, request, blobs) -> asyncio.Future:
        """Admit (or shed) one request; returns its response future.

        Runs on the event loop, never blocks: the returned future is
        already resolved for shed requests, shared for coalesced ones,
        and an executor-backed wrapper otherwise. It always resolves
        to a response dict — never raises.
        """
        op = request.get("op") if isinstance(request, dict) else None
        op_label = op if op in getattr(self.service, "_ops", {}) else "unknown"
        _GW_REQUESTS.inc(op=op_label)
        shed = None
        if self._draining:
            shed = "draining"
        elif conn.inflight >= self.client_budget:
            shed = "client_budget"
        elif self._inflight >= self.max_inflight + self.max_queue:
            shed = "queue_full"
        if shed is not None:
            _SHED.inc(reason=shed)
            self.requests_shed += 1
            return self._completed(self._overloaded_response(request, shed))
        conn.inflight += 1
        key = self._coalesce_key(request, blobs)
        shared = self._compiles.get(key) if key is not None else None
        if shared is not None:
            _COALESCE.inc(outcome="hit")
            result = shared
        else:
            result = self._submit(request, blobs, op_label, key)
            if key is not None:
                _COALESCE.inc(outcome="lead")
                self._compiles[key] = result

        def _release(_fut):
            conn.inflight -= 1

        result.add_done_callback(_release)
        return result

    def _submit(self, request, blobs, op_label, key) -> asyncio.Future:
        """Hand one request to the executor; wrap its completion."""
        self._inflight += 1
        _QUEUE_DEPTH.set(self._queue_depth())
        watch = Stopwatch()
        inner = self._loop.run_in_executor(
            self._executor, partial(self._call_service, request, blobs)
        )
        outer = self._loop.create_future()

        def _finish(fut):
            self._inflight -= 1
            _QUEUE_DEPTH.set(self._queue_depth())
            if key is not None and self._compiles.get(key) is outer:
                del self._compiles[key]
            _GW_SECONDS.observe(watch.s, op=op_label)
            exc = fut.exception() if not fut.cancelled() else None
            if fut.cancelled():
                response = self._error_for(
                    request,
                    protocol.ProtocolError(
                        protocol.WORKER_UNAVAILABLE,
                        "gateway shut down before the request executed",
                    ),
                )
            elif exc is not None:
                err = protocol.classify_exception(
                    exc if isinstance(exc, Exception) else RuntimeError(str(exc))
                )
                response = self._error_for(request, err)
            else:
                response = fut.result()
            if not outer.done():
                outer.set_result(response)

        inner.add_done_callback(_finish)
        return outer

    def _call_service(self, request, blobs):
        """Executor thread: run the service handler, never raise."""
        try:
            if blobs is None:
                return self.service.handle(request)
            response, _out_blobs = self.service.handle_frame(request, blobs)
            return response
        except Exception as exc:  # handle() catches its own; this is belt
            return self._error_for(request, protocol.classify_exception(exc))

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    @property
    def model_fingerprint(self) -> str | None:
        if self._model_fp is False:
            learned = getattr(self.service.store.fixy, "learned", None)
            self._model_fp = (
                learned.fingerprint() if learned is not None else None
            )
        return self._model_fp

    def _coalesce_key(self, request, blobs):
        """The sidecar-shaped sharing key, or ``None`` (not coalescable).

        Only stateless hash-naming audits coalesce: same spec, same
        ``scene_hashes``, same shipped blob set, same model
        fingerprint, same response dialect. Sessions and traces are
        per-request state; ``scenes`` bodies are per-request payloads.
        """
        if not isinstance(request, dict) or request.get("op") != "audit":
            return None
        if request.get("session_id") is not None or request.get("trace_id"):
            return None
        hashes = request.get("scene_hashes")
        if not isinstance(hashes, (list, tuple)) or not hashes:
            return None
        if not all(isinstance(h, str) for h in hashes):
            return None
        try:
            # The whole request, canonicalized: two requests share a
            # response only when *nothing* about them differs (spec,
            # hashes, version, any extra field) — strictly safe even
            # for fields the audit handler happens to ignore.
            request_key = json.dumps(
                request, sort_keys=True, separators=(",", ":")
            )
        except (TypeError, ValueError):
            return None
        blob_key = tuple(
            frames.scene_fingerprint(blob) for blob in (blobs or ())
        )
        return (request_key, blob_key, self.model_fingerprint)

    # ------------------------------------------------------------------
    # Response construction
    # ------------------------------------------------------------------
    def _completed(self, response: dict) -> asyncio.Future:
        fut = self._loop.create_future()
        fut.set_result(response)
        return fut

    def _response_version(self, request) -> int:
        """The dialect to answer a request the gateway itself refuses."""
        if isinstance(request, dict) and "v" in request:
            version = request["v"]
            if version in self.service.supported_versions:
                return version
            return self.service.protocol_version
        if self.service.accept_legacy:
            return protocol.LEGACY_VERSION
        return self.service.protocol_version

    def _error_for(self, request, err: protocol.ProtocolError) -> dict:
        version = self._response_version(request)
        if version == protocol.LEGACY_VERSION:
            return {"ok": False, "error": err.message}
        return protocol.error_response(
            err.code, err.message, details=err.details, version=version
        )

    def _overloaded_response(self, request, reason: str) -> dict:
        details = {
            "reason": reason,
            "queue_depth": self._queue_depth(),
            "max_queue": self.max_queue,
            "max_inflight": self.max_inflight,
            "client_budget": self.client_budget,
        }
        return self._error_for(
            request,
            protocol.ProtocolError(
                protocol.OVERLOADED, _SHED_MESSAGES[reason], details
            ),
        )


async def run_gateway(gateway: AsyncGateway, announce=None) -> None:
    """Foreground entry point: serve until SIGINT/SIGTERM, then drain.

    ``announce(address)`` is called once the listener is bound (the
    CLI prints its banner through it).
    """
    import signal

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop: Ctrl-C surfaces as KeyboardInterrupt
    await gateway.start()
    if announce is not None:
        announce(gateway.address)
    try:
        await stop.wait()
    finally:
        await gateway.shutdown()


class GatewayWorker:
    """An in-process async gateway: service + event loop + thread.

    The :class:`~repro.serving.tcp.TcpWorker` shape for the async
    front: spawns a real TCP endpoint backed by a daemon thread
    running the event loop, so tests and benchmarks stand up a
    gateway exactly as ``cli serve --listen … --async`` would. Pass a
    prebuilt ``service`` or a fitted ``fixy`` (plus
    :class:`StreamingService` keyword options).
    """

    def __init__(
        self,
        fixy=None,
        service: StreamingService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 4,
        max_queue: int = 64,
        client_budget: int = 16,
        drain_timeout: float = 5.0,
        **service_options,
    ):
        if service is None:
            if fixy is None:
                raise ValueError("GatewayWorker needs a fixy or a service")
            service = StreamingService(fixy, **service_options)
        self.service = service
        self.gateway = AsyncGateway(
            service,
            host=host,
            port=port,
            max_inflight=max_inflight,
            max_queue=max_queue,
            client_budget=client_budget,
            drain_timeout=drain_timeout,
        )
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self.thread = threading.Thread(
            target=self._run, name="gateway-worker", daemon=True
        )
        self.thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            raise RuntimeError(
                f"gateway failed to start: {self._startup_error}"
            ) from self._startup_error
        if self.gateway.address is None:
            raise RuntimeError("gateway failed to start (no bound address)")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.gateway.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.gateway.shutdown()

    @property
    def address(self) -> str:
        return self.gateway.address

    def stop(self) -> None:
        """Drain the gateway and join the event-loop thread."""
        if (
            self._loop is not None
            and self._stop_event is not None
            and self.thread.is_alive()
        ):
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self.thread.join(timeout=30)

    def __enter__(self) -> "GatewayWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
