"""Incremental scene sessions: delta recompilation over columnar arrays.

A :class:`SceneSession` owns one mutable scene plus its compiled
representation and keeps the two in sync under edits. The unit of
incrementality is the **track segment**: each track is compiled on its
own (a single-track scene through the ordinary columnar pipeline), and
the scene-wide :class:`~repro.core.compile.CompiledColumns` is the
splice of all segments (:func:`repro.core.compile.splice_compiled`).

Why the track is the right granularity: every built-in feature is
track-local — an observation feature touches one row, a bundle feature
one bundle, a transition feature two adjacent bundles *of the same
track*, a track feature the whole track. So an edit anywhere inside a
track invalidates at most that track's rows, its adjacent transitions,
and its track-level factors — precisely one segment — while every other
segment's extracted values, batched densities, and AOF-transformed
potentials are reused byte-for-byte. Applying one edit to a scene with
``T`` tracks therefore costs one single-track compile plus an
O(n) array splice, instead of ``T`` tracks' worth of feature extraction
and density evaluation (the ``bench_delta_recompile`` benchmark asserts
the resulting ≥5× at 25 tracks; in practice it approaches ``T``×).

The from-scratch :func:`~repro.core.compile.compile_scene` remains the
executable reference: :meth:`SceneSession.verify` recompiles the scene
wholesale and checks the spliced state against it (factor structure
exactly, potentials and scores to 1e-9), and the property tests in
``tests/serving/test_session.py`` drive randomized edit sequences
through that check.

Cross-track features (a custom ``observations_of`` reaching into
another track) cannot compile per-track and are not supported in
sessions; the batch engine still handles them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.aof import AOF
from repro.core.compile import CompiledScene, compile_scene, splice_compiled
from repro.core.features import Feature, FeatureContext
from repro.core.model import Scene, Track
from repro.core.scoring import ScoredItem, Scorer
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import Stopwatch
from repro.serving.edits import SceneEdit
from repro.serving.standing import SPEC_FILTER, StandingAudit

__all__ = ["SceneSession", "SessionStats"]

# Process-wide session metrics (summed over every live session; the
# per-session SessionStats below stay the per-object view the `stats`
# protocol op reports). Names are API — docs/API.md, "Observability".
_EDITS = obs_metrics.counter(
    "repro_session_edits_total", "Scene edits applied across all sessions"
)
_EDIT_SECONDS = obs_metrics.histogram(
    "repro_session_edit_seconds",
    "Seconds per applied edit (segment recompile + standing maintenance)",
)
_SPLICES = obs_metrics.counter(
    "repro_session_splices_total",
    "Compiled-scene splices (lazy merge after edits)",
)
_TRACKS_RECOMPILED = obs_metrics.counter(
    "repro_session_tracks_recompiled_total",
    "Track segments recompiled by session edits",
)


@dataclass
class SessionStats:
    """Counters a serving dashboard would scrape."""

    edits_applied: int = 0
    tracks_recompiled: int = 0
    segments_dropped: int = 0
    splices: int = 0
    full_compiles: int = 0

    def to_dict(self) -> dict:
        return {
            "edits_applied": self.edits_applied,
            "tracks_recompiled": self.tracks_recompiled,
            "segments_dropped": self.segments_dropped,
            "splices": self.splices,
            "full_compiles": self.full_compiles,
        }


@dataclass
class _Segment:
    """One track's compiled state."""

    track: Track
    compiled: CompiledScene


class SceneSession:
    """A long-lived, editable scene with incrementally maintained state.

    Args:
        scene: The scene this session owns. The session mutates it in
            place when edits are applied; callers must not mutate it
            behind the session's back (or must call :meth:`invalidate`
            with the touched track ids when they do).
        features: Feature set, as for :func:`~repro.core.compile.compile_scene`.
        learned: Fitted distributions (required by learnable features).
        aofs: Optional per-feature AOFs.
        session_id: Identifier in a :class:`~repro.serving.store.SessionStore`;
            defaults to the scene id.
        max_standing: Cap on concurrently subscribed standing audits
            (each one pays O(changed · log k) on every edit).
        on_invalidate: Called (with no arguments) whenever an edit or
            :meth:`invalidate` changes the scene — the hook
            :meth:`repro.core.engine.Fixy.session` uses to evict the
            scene from the engine's identity-keyed compile cache, which
            would otherwise serve stale pre-edit rankings. Standalone
            callers that also rank the same scene object through a
            ``Fixy`` must call ``fixy.clear_compile_cache()`` themselves
            after edits.

    The session is thread-safe: edits and queries serialize on an
    internal lock (a session is one scene's state machine; concurrency
    across scenes comes from the store holding many sessions).
    """

    def __init__(
        self,
        scene: Scene,
        features: list[Feature],
        learned=None,
        aofs: dict[str, AOF] | None = None,
        session_id: str | None = None,
        on_invalidate=None,
        max_standing: int = 16,
    ):
        self.scene = scene
        self.session_id = session_id or scene.scene_id
        self.features = list(features)
        self.learned = learned
        self.aofs = dict(aofs or {})
        self.context = FeatureContext.from_scene(scene)
        self.version = 0
        self.stats = SessionStats()
        self._on_invalidate = on_invalidate
        self._lock = threading.RLock()
        self._segments: dict[str, _Segment] = {}
        self._merged: CompiledScene | None = None
        self._scorer: Scorer | None = None
        #: obs_id -> owning track_id (with the per-track id sets below),
        #: maintained across edits so a duplicate observation id is
        #: rejected at edit time — the same invariant the from-scratch
        #: compile enforces eagerly, which the lazy spliced table would
        #: otherwise only catch on the first row materialization.
        self._obs_owner: dict[str, str] = {}
        self._track_ids: dict[str, list[str]] = {}
        #: tracks whose segment recompile failed mid-edit; retried on
        #: the next compiled-state access so the session cannot serve
        #: stale pre-edit state after an error response.
        self._dirty: set[str] = set()
        #: standing audits maintained incrementally under edits, and
        #: the track ids whose maintenance is still owed (only non-empty
        #: transiently, or after a mid-edit failure — the same retry
        #: discipline as ``_dirty``).
        self.max_standing = max_standing
        self._standing: dict[str, StandingAudit] = {}
        self._standing_pending: set[str] = set()
        for track in scene.tracks:
            self._adopt_segment(track)

    # ------------------------------------------------------------------
    # Delta recompilation
    # ------------------------------------------------------------------
    def _compile_track(self, track: Track) -> _Segment:
        subscene = Scene(
            scene_id=self.scene.scene_id,
            dt=self.scene.dt,
            tracks=[track],
            metadata=self.scene.metadata,
        )
        compiled = compile_scene(
            subscene,
            self.features,
            learned=self.learned,
            aofs=self.aofs,
            context=self.context,
            vectorized=True,
        )
        self.stats.tracks_recompiled += 1
        _TRACKS_RECOMPILED.inc()
        return _Segment(track=track, compiled=compiled)

    def _adopt_segment(self, track: Track) -> None:
        """Compile a track's segment and claim its observation ids."""
        segment = self._compile_track(track)
        ids = list(segment.compiled.columns.table.row_of)
        for obs_id in ids:
            owner = self._obs_owner.get(obs_id)
            if owner is not None and owner != track.track_id:
                raise ValueError(f"variable {obs_id!r} already exists")
        self._drop_owned_ids(track.track_id)
        for obs_id in ids:
            self._obs_owner[obs_id] = track.track_id
        self._track_ids[track.track_id] = ids
        self._segments[track.track_id] = segment
        self._dirty.discard(track.track_id)

    def _drop_owned_ids(self, track_id: str) -> None:
        for obs_id in self._track_ids.pop(track_id, ()):
            if self._obs_owner.get(obs_id) == track_id:
                del self._obs_owner[obs_id]

    def apply(self, edit: SceneEdit) -> set[str]:
        """Apply one edit; returns the track ids that were recompiled
        (or dropped). Only those tracks' rows, adjacent transitions, and
        track-level factors are re-evaluated."""
        with self._lock:
            watch = Stopwatch()
            with obs_trace.span(
                "session.edit", attrs={"session": self.session_id}
            ) as record:
                changed = edit.apply(self.scene)
                self.stats.edits_applied += 1
                self._invalidate_locked(changed)
                record.attrs["changed"] = len(changed)
            _EDITS.inc()
            _EDIT_SECONDS.observe(watch.s)
            return changed

    def invalidate(self, track_ids) -> None:
        """Recompile the segments of ``track_ids`` (drop removed ones).

        The escape hatch for callers that mutated ``scene`` directly
        instead of going through :meth:`apply`.
        """
        with self._lock:
            self._invalidate_locked(set(track_ids))

    def _invalidate_locked(self, changed: set[str]) -> None:
        # The compiled views are stale the moment the scene mutated —
        # invalidate before recompiling, so a failed segment compile
        # can never leave the old state being served (the failed track
        # stays dirty and is retried on the next access instead).
        self._merged = None
        self._scorer = None
        self.version += 1
        if self._on_invalidate is not None:
            self._on_invalidate()
        self._dirty |= changed
        # Owed to standing audits *before* recompiling: if a segment
        # compile fails below, the pending set survives the exception
        # and the retry path re-runs maintenance for these tracks.
        self._standing_pending |= changed
        present = {t.track_id: t for t in self.scene.tracks}
        for track_id in changed:
            track = present.get(track_id)
            if track is None:
                if self._segments.pop(track_id, None) is not None:
                    self.stats.segments_dropped += 1
                self._drop_owned_ids(track_id)
                self._dirty.discard(track_id)
            else:
                self._adopt_segment(track)
        self._notify_standing_locked()

    def _notify_standing_locked(self) -> None:
        """Deliver owed maintenance to every standing audit.

        Rescoring is idempotent per track, so a failure partway through
        leaves the pending set intact and the retry converges.
        """
        if not self._standing_pending:
            return
        if self._standing:
            pending = set(self._standing_pending)
            for audit in self._standing.values():
                audit._rescore(pending)
        self._standing_pending.clear()

    def _ensure_clean_locked(self) -> None:
        """Retry any failed recompiles and owed standing maintenance.

        Queries call this first so an edit that errored mid-flight can
        never leave stale pre-edit state being served.
        """
        if self._dirty:
            self._invalidate_locked(set(self._dirty))
        else:
            self._notify_standing_locked()

    # ------------------------------------------------------------------
    # Compiled views
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledScene:
        """The scene's compiled state (spliced lazily after edits)."""
        with self._lock:
            if self._merged is None:
                if self._dirty:
                    # Retry segments whose recompile failed mid-edit;
                    # until they succeed the session refuses to serve.
                    self._invalidate_locked(set(self._dirty))
                segments = []
                for track in self.scene.tracks:
                    segment = self._segments.get(track.track_id)
                    if segment is None or segment.track is not track:
                        raise RuntimeError(
                            f"session {self.session_id!r} has no segment for "
                            f"track {track.track_id!r} — the scene was mutated "
                            "without apply()/invalidate()"
                        )
                    segments.append(segment.compiled)
                self._merged = splice_compiled(
                    self.scene, segments, context=self.context
                )
                self.stats.splices += 1
                _SPLICES.inc()
            return self._merged

    @property
    def scorer(self) -> Scorer:
        with self._lock:
            if self._scorer is None:
                self._scorer = Scorer(self.compiled)
            return self._scorer

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rank_tracks(self, track_filter=None, top_k: int | None = None) -> list[ScoredItem]:
        return self.rank("tracks", track_filter, top_k)

    def rank_bundles(self, bundle_filter=None, top_k: int | None = None) -> list[ScoredItem]:
        return self.rank("bundles", bundle_filter, top_k)

    def rank_observations(self, obs_filter=None, top_k: int | None = None) -> list[ScoredItem]:
        return self.rank("observations", obs_filter, top_k)

    def rank(self, kind: str, filt=None, top_k: int | None = None) -> list[ScoredItem]:
        """Rank by component kind (:meth:`repro.core.scoring.Scorer.rank`).

        Runs under the session lock so concurrent edits cannot mutate
        the scene mid-iteration.
        """
        with self._lock:
            ranked = self.scorer.rank(kind, filt)
        return ranked[:top_k] if top_k is not None else ranked

    # ------------------------------------------------------------------
    # Standing audits
    # ------------------------------------------------------------------
    def subscribe(
        self, spec, audit_id: str | None = None, filt=SPEC_FILTER
    ) -> StandingAudit:
        """Register ``spec`` as a standing query over this session.

        Scores every track once up front; from then on each
        :meth:`apply`/:meth:`invalidate` rescores only the invalidated
        tracks and re-heaps the audit's top-k in O(changed · log k).
        Raises ``ValueError`` on a duplicate ``audit_id`` and
        ``RuntimeError`` past :attr:`max_standing` subscriptions.
        """
        with self._lock:
            self._ensure_clean_locked()
            audit = StandingAudit(self, spec, audit_id=audit_id, filt=filt)
            if audit.audit_id in self._standing:
                raise ValueError(
                    f"standing audit {audit.audit_id!r} already subscribed "
                    f"to session {self.session_id!r}"
                )
            if len(self._standing) >= self.max_standing:
                raise RuntimeError(
                    f"session {self.session_id!r} is at its standing-audit "
                    f"limit ({self.max_standing})"
                )
            audit._rescore(
                {t.track_id for t in self.scene.tracks}, initial=True
            )
            self._standing[audit.audit_id] = audit
            return audit

    def unsubscribe(self, audit_id: str) -> bool:
        """Drop a standing audit; True if it was subscribed."""
        with self._lock:
            return self._standing.pop(audit_id, None) is not None

    def standing_audit(self, audit_id: str) -> StandingAudit:
        """Look up a subscription (``KeyError`` if unknown)."""
        with self._lock:
            audit = self._standing.get(audit_id)
            if audit is None:
                raise KeyError(
                    f"no standing audit {audit_id!r} in session "
                    f"{self.session_id!r}"
                )
            return audit

    def standing_audits(self) -> list[StandingAudit]:
        """The live subscriptions, in subscription order."""
        with self._lock:
            return list(self._standing.values())

    # ------------------------------------------------------------------
    # Reference equivalence
    # ------------------------------------------------------------------
    def full_compile(self) -> CompiledScene:
        """From-scratch compile of the current scene (the reference)."""
        with self._lock:
            self.stats.full_compiles += 1
            return compile_scene(
                self.scene,
                self.features,
                learned=self.learned,
                aofs=self.aofs,
                context=self.context,
                vectorized=True,
            )

    def verify(self, tol: float = 1e-9) -> bool:
        """Check the spliced state against a from-scratch recompile.

        Also re-verifies every subscribed standing audit against the
        full-rescore reference (:meth:`StandingAudit.verify`).
        Raises ``AssertionError`` on any divergence: factor count,
        names, member observation rows, or potentials beyond ``tol``.
        Returns True otherwise. This is the property-test hook — and a
        paranoid serving deployment could run it on a sampled fraction
        of edits.
        """
        import numpy as np

        with self._lock:
            spliced = self.compiled.columns
            reference = self.full_compile().columns
        assert spliced.n_factors == reference.n_factors, (
            f"factor count {spliced.n_factors} != {reference.n_factors}"
        )
        assert spliced.factor_names() == reference.factor_names()
        assert [o.obs_id for o in spliced.table.observations] == [
            o.obs_id for o in reference.table.observations
        ]
        assert spliced.track_factor_slices == reference.track_factor_slices
        np.testing.assert_allclose(
            spliced.potentials, reference.potentials, rtol=0.0, atol=tol
        )
        for i in range(spliced.n_factors):
            assert np.array_equal(
                spliced.member_rows(i), reference.member_rows(i)
            ), f"factor {i} member rows diverged"
        for audit in self.standing_audits():
            audit.verify()
        return True
