"""Synthetic AV world generation: objects, kinematics, scenes, visibility."""

from repro.datagen.dataset import SceneCollection, train_val_split
from repro.datagen.kinematics import (
    ConstantTurnModel,
    ConstantVelocityModel,
    MotionModel,
    ParkedModel,
    StopAndGoModel,
    WanderModel,
    simulate_trajectory,
)
from repro.datagen.objects import (
    CLASS_PRIORS,
    ClassPrior,
    ObjectClass,
    sample_dimensions,
)
from repro.datagen.sensor import VisibilityModel, visible_objects
from repro.datagen.world import SceneConfig, SceneGenerator, WorldObject, WorldScene

__all__ = [
    "CLASS_PRIORS",
    "ClassPrior",
    "ConstantTurnModel",
    "ConstantVelocityModel",
    "MotionModel",
    "ObjectClass",
    "ParkedModel",
    "SceneCollection",
    "SceneConfig",
    "SceneGenerator",
    "StopAndGoModel",
    "VisibilityModel",
    "WanderModel",
    "WorldObject",
    "WorldScene",
    "sample_dimensions",
    "simulate_trajectory",
    "train_val_split",
    "visible_objects",
]
