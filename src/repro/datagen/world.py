"""Ground-truth world scenes: objects, trajectories, and scene generation.

A :class:`WorldScene` is the synthetic stand-in for a 15-second snippet of
an AV log (what the paper calls a *scene*): a fixed-rate sequence of frames
with an ego trajectory and a population of objects, each with a class,
fixed physical dimensions, and a planar trajectory. Objects may be present
for only part of the scene (spawned late / despawned early), which is how
short-lived-but-real objects like the occluded motorcycle of the paper's
Figure 4 arise.

Everything downstream — labeler simulators, detector simulators, the
evaluation harness — consumes :class:`WorldScene` ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.objects import (
    CLASS_PRIORS,
    ObjectClass,
    sample_dimensions,
    sample_speed,
)
from repro.datagen.kinematics import (
    ConstantTurnModel,
    ConstantVelocityModel,
    MotionModel,
    ParkedModel,
    StopAndGoModel,
    WanderModel,
    simulate_trajectory,
)
from repro.geometry import Box3D, Pose2D

__all__ = ["WorldObject", "WorldScene", "SceneConfig", "SceneGenerator"]


@dataclass
class WorldObject:
    """One ground-truth object with its full trajectory.

    Attributes:
        object_id: Scene-unique identifier.
        object_class: Semantic class.
        length, width, height: Fixed physical dimensions (m).
        z_center: Center height above ground (m).
        poses: One entry per scene frame; ``None`` when the object is not
            present in the world at that frame.
    """

    object_id: str
    object_class: ObjectClass
    length: float
    width: float
    height: float
    z_center: float
    poses: list[Pose2D | None]

    def box_at(self, frame: int) -> Box3D | None:
        """Ground-truth box at ``frame`` (world coordinates), or ``None``."""
        pose = self.poses[frame]
        if pose is None:
            return None
        return Box3D(
            x=pose.x,
            y=pose.y,
            z=self.z_center,
            length=self.length,
            width=self.width,
            height=self.height,
            yaw=pose.theta,
        )

    @property
    def present_frames(self) -> list[int]:
        """Frames at which the object exists."""
        return [i for i, p in enumerate(self.poses) if p is not None]

    @property
    def n_present(self) -> int:
        return sum(1 for p in self.poses if p is not None)

    def speed_at(self, frame: int, dt: float) -> float | None:
        """Ground-truth speed (m/s) estimated from adjacent poses."""
        if frame + 1 >= len(self.poses):
            return None
        a, b = self.poses[frame], self.poses[frame + 1]
        if a is None or b is None:
            return None
        return a.distance_to(b) / dt

    def to_dict(self) -> dict:
        return {
            "object_id": self.object_id,
            "object_class": self.object_class.value,
            "length": self.length,
            "width": self.width,
            "height": self.height,
            "z_center": self.z_center,
            "poses": [None if p is None else p.to_dict() for p in self.poses],
        }

    @staticmethod
    def from_dict(data: dict) -> "WorldObject":
        return WorldObject(
            object_id=data["object_id"],
            object_class=ObjectClass.from_string(data["object_class"]),
            length=float(data["length"]),
            width=float(data["width"]),
            height=float(data["height"]),
            z_center=float(data["z_center"]),
            poses=[
                None if p is None else Pose2D.from_dict(p) for p in data["poses"]
            ],
        )


@dataclass
class WorldScene:
    """A fixed-rate snippet of the simulated world.

    Attributes:
        scene_id: Dataset-unique identifier.
        dt: Seconds between frames.
        ego_poses: Ego vehicle pose per frame.
        objects: All ground-truth objects.
    """

    scene_id: str
    dt: float
    ego_poses: list[Pose2D]
    objects: list[WorldObject] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return len(self.ego_poses)

    @property
    def duration_s(self) -> float:
        return self.n_frames * self.dt

    def object_by_id(self, object_id: str) -> WorldObject:
        for obj in self.objects:
            if obj.object_id == object_id:
                return obj
        raise KeyError(f"no object {object_id!r} in scene {self.scene_id!r}")

    def boxes_at(self, frame: int) -> list[tuple[WorldObject, Box3D]]:
        """All (object, box) pairs present at ``frame``."""
        out = []
        for obj in self.objects:
            box = obj.box_at(frame)
            if box is not None:
                out.append((obj, box))
        return out

    def to_dict(self) -> dict:
        return {
            "scene_id": self.scene_id,
            "dt": self.dt,
            "ego_poses": [p.to_dict() for p in self.ego_poses],
            "objects": [o.to_dict() for o in self.objects],
        }

    @staticmethod
    def from_dict(data: dict) -> "WorldScene":
        return WorldScene(
            scene_id=data["scene_id"],
            dt=float(data["dt"]),
            ego_poses=[Pose2D.from_dict(p) for p in data["ego_poses"]],
            objects=[WorldObject.from_dict(o) for o in data["objects"]],
        )


@dataclass(frozen=True)
class SceneConfig:
    """Parameters controlling scene generation.

    Defaults model a 15-second urban snippet at 5 Hz — the paper's scenes
    are 15 seconds, and the Lyft dataset is annotated at 5 Hz.
    """

    n_frames: int = 75
    dt: float = 0.2
    n_objects_range: tuple[int, int] = (14, 26)
    spawn_radius: float = 55.0
    min_spawn_distance: float = 5.0
    ego_speed: float = 6.0
    class_mix: tuple[tuple[ObjectClass, float], ...] = (
        (ObjectClass.CAR, 0.62),
        (ObjectClass.TRUCK, 0.13),
        (ObjectClass.PEDESTRIAN, 0.17),
        (ObjectClass.MOTORCYCLE, 0.08),
    )
    partial_presence_prob: float = 0.18
    min_presence_frames: int = 3

    def __post_init__(self) -> None:
        if self.n_frames < 2:
            raise ValueError("scenes need at least 2 frames for transitions")
        total = sum(w for _, w in self.class_mix)
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ValueError(f"class_mix weights must sum to 1, got {total}")


class SceneGenerator:
    """Generates deterministic ground-truth scenes from a config and seed."""

    def __init__(self, config: SceneConfig | None = None):
        self.config = config or SceneConfig()

    # ------------------------------------------------------------------
    def generate(self, scene_id: str, seed: int) -> WorldScene:
        """Generate one scene. Same (scene_id, seed, config) → same scene."""
        cfg = self.config
        rng = np.random.default_rng(seed)

        ego_poses = self._ego_trajectory(rng)
        scene = WorldScene(scene_id=scene_id, dt=cfg.dt, ego_poses=ego_poses)

        n_objects = int(rng.integers(cfg.n_objects_range[0], cfg.n_objects_range[1] + 1))
        for idx in range(n_objects):
            scene.objects.append(self._spawn_object(f"{scene_id}-obj{idx:03d}", rng, ego_poses))
        return scene

    def generate_many(self, n_scenes: int, seed: int, prefix: str = "scene") -> list[WorldScene]:
        """Generate ``n_scenes`` scenes with per-scene derived seeds."""
        root = np.random.default_rng(seed)
        seeds = root.integers(0, 2**31 - 1, size=n_scenes)
        return [
            self.generate(f"{prefix}-{i:04d}", int(seeds[i])) for i in range(n_scenes)
        ]

    # ------------------------------------------------------------------
    def _ego_trajectory(self, rng: np.random.Generator) -> list[Pose2D]:
        """Ego drives roughly straight with a gentle random curvature."""
        cfg = self.config
        yaw_rate = float(rng.uniform(-0.04, 0.04))
        model = ConstantTurnModel(speed=cfg.ego_speed, yaw_rate=yaw_rate)
        start = Pose2D(0.0, 0.0, float(rng.uniform(-math.pi, math.pi)))
        return simulate_trajectory(model, start, cfg.n_frames, cfg.dt, rng)

    def _sample_class(self, rng: np.random.Generator) -> ObjectClass:
        classes = [c for c, _ in self.config.class_mix]
        weights = np.array([w for _, w in self.config.class_mix], dtype=float)
        return classes[int(rng.choice(len(classes), p=weights / weights.sum()))]

    def _motion_model(
        self, object_class: ObjectClass, rng: np.random.Generator
    ) -> MotionModel:
        prior = CLASS_PRIORS[object_class]
        if rng.random() < prior.stationary_prob:
            return ParkedModel()
        speed = sample_speed(object_class, rng)
        if object_class is ObjectClass.PEDESTRIAN:
            return WanderModel(speed=speed)
        roll = rng.random()
        if roll < 0.45:
            return ConstantVelocityModel(speed=speed, heading_noise=0.005)
        if roll < 0.75:
            return ConstantTurnModel(speed=speed, yaw_rate=float(rng.uniform(-0.12, 0.12)))
        return StopAndGoModel(cruise_speed=speed)

    def _spawn_object(
        self, object_id: str, rng: np.random.Generator, ego_poses: list[Pose2D]
    ) -> WorldObject:
        cfg = self.config
        object_class = self._sample_class(rng)
        length, width, height = sample_dimensions(object_class, rng)
        prior = CLASS_PRIORS[object_class]

        # Spawn position: uniform annulus around the ego's mid-scene pose so
        # traffic surrounds the route rather than the starting point.
        anchor = ego_poses[len(ego_poses) // 2]
        radius = float(
            rng.uniform(cfg.min_spawn_distance, cfg.spawn_radius)
        )
        bearing = float(rng.uniform(-math.pi, math.pi))
        start = Pose2D(
            anchor.x + radius * math.cos(bearing),
            anchor.y + radius * math.sin(bearing),
            float(rng.uniform(-math.pi, math.pi)),
        )

        model = self._motion_model(object_class, rng)
        poses: list[Pose2D | None] = list(
            simulate_trajectory(model, start, cfg.n_frames, cfg.dt, rng)
        )

        # Some objects only exist for a window of the scene (late entry or
        # early exit), like the paper's briefly-visible motorcycle.
        if rng.random() < cfg.partial_presence_prob:
            window = int(
                rng.integers(cfg.min_presence_frames, max(cfg.n_frames // 2, cfg.min_presence_frames + 1))
            )
            start_frame = int(rng.integers(0, cfg.n_frames - window + 1))
            for i in range(cfg.n_frames):
                if not (start_frame <= i < start_frame + window):
                    poses[i] = None

        return WorldObject(
            object_id=object_id,
            object_class=object_class,
            length=length,
            width=width,
            height=height,
            z_center=prior.z_center,
            poses=poses,
        )
