"""Dataset containers and JSON (de)serialization for world scenes.

A :class:`SceneCollection` is the on-disk unit: a named set of ground-truth
scenes plus the config used to generate them. Serialization is plain JSON
(optionally gzipped) so datasets can be checked in, diffed, and reloaded
deterministically without the simulator.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.datagen.world import WorldScene

__all__ = ["SceneCollection", "train_val_split"]


@dataclass
class SceneCollection:
    """A named, ordered collection of ground-truth scenes."""

    name: str
    scenes: list[WorldScene] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.scenes)

    def __iter__(self) -> Iterator[WorldScene]:
        return iter(self.scenes)

    def __getitem__(self, index: int) -> WorldScene:
        return self.scenes[index]

    def scene_by_id(self, scene_id: str) -> WorldScene:
        for scene in self.scenes:
            if scene.scene_id == scene_id:
                return scene
        raise KeyError(f"no scene {scene_id!r} in collection {self.name!r}")

    @property
    def total_objects(self) -> int:
        return sum(len(s.objects) for s in self.scenes)

    @property
    def total_frames(self) -> int:
        return sum(s.n_frames for s in self.scenes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metadata": self.metadata,
            "scenes": [s.to_dict() for s in self.scenes],
        }

    @staticmethod
    def from_dict(data: dict) -> "SceneCollection":
        return SceneCollection(
            name=data["name"],
            metadata=dict(data.get("metadata", {})),
            scenes=[WorldScene.from_dict(s) for s in data["scenes"]],
        )

    def save(self, path: str | Path) -> None:
        """Write the collection as JSON; ``.gz`` suffix enables gzip."""
        path = Path(path)
        payload = json.dumps(self.to_dict())
        if path.suffix == ".gz":
            with gzip.open(path, "wt", encoding="utf-8") as fh:
                fh.write(payload)
        else:
            path.write_text(payload, encoding="utf-8")

    @staticmethod
    def load(path: str | Path) -> "SceneCollection":
        path = Path(path)
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                data = json.load(fh)
        else:
            data = json.loads(path.read_text(encoding="utf-8"))
        return SceneCollection.from_dict(data)


def train_val_split(
    collection: SceneCollection, val_fraction: float = 0.2
) -> tuple[SceneCollection, SceneCollection]:
    """Deterministic prefix/suffix split into train and validation sets.

    The paper learns feature distributions on training scenes and searches
    for errors on the validation set ("not seen at training time"); this
    helper mirrors that protocol. The split is by position, not random, so
    it is stable across runs without threading a seed through.
    """
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    n_val = max(1, round(len(collection) * val_fraction))
    n_train = len(collection) - n_val
    if n_train < 1:
        raise ValueError(
            f"collection of {len(collection)} scenes cannot support "
            f"val_fraction={val_fraction}"
        )
    train = SceneCollection(
        name=f"{collection.name}-train",
        scenes=collection.scenes[:n_train],
        metadata=dict(collection.metadata),
    )
    val = SceneCollection(
        name=f"{collection.name}-val",
        scenes=collection.scenes[n_train:],
        metadata=dict(collection.metadata),
    )
    return train, val
