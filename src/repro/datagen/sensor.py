"""LIDAR-style visibility: range limits and angular occlusion shadows.

A spinning LIDAR cannot see through objects: anything inside the angular
shadow cast by a closer object is invisible. The paper's Figure 4 hinges on
exactly this — a motorcycle occluded by other vehicles is visible for less
than a second, gets missed by human labelers, and must still be found.

This module computes, per frame, which ground-truth objects are visible to
the sensor. Both the human-labeler and detector simulators only ever
observe visible objects, so occlusion-induced short tracks arise naturally.

The model: each object subtends an angular interval around its bearing
from the ego, with half-width ``atan(circumradius / distance)``. An object
is visible when (a) it is within ``max_range`` and (b) at least
``min_visible_fraction`` of its interval is not covered by the union of
the intervals of strictly closer objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datagen.world import WorldObject, WorldScene
from repro.geometry import Box3D, Pose2D

__all__ = ["VisibilityModel", "AngularInterval", "visible_objects"]


@dataclass(frozen=True)
class AngularInterval:
    """A closed interval of bearings ``[center - half_width, center + half_width]``.

    Bearings are radians in ``[-pi, pi)``; intervals may wrap around ±pi.
    """

    center: float
    half_width: float

    def covers(self, bearing: float) -> bool:
        """Whether ``bearing`` lies within the interval (wrap-aware)."""
        diff = (bearing - self.center + math.pi) % (2 * math.pi) - math.pi
        return abs(diff) <= self.half_width

    def overlap_fraction(self, other: "AngularInterval") -> float:
        """Fraction of *this* interval covered by ``other``."""
        if self.half_width <= 0:
            return 1.0 if other.covers(self.center) else 0.0
        diff = (other.center - self.center + math.pi) % (2 * math.pi) - math.pi
        lo = max(-self.half_width, diff - other.half_width)
        hi = min(self.half_width, diff + other.half_width)
        if hi <= lo:
            return 0.0
        return (hi - lo) / (2 * self.half_width)


def _interval_from(ego: Pose2D, box: Box3D) -> tuple[AngularInterval, float]:
    """Angular interval subtended by ``box`` seen from ``ego`` and its range."""
    dx, dy = box.x - ego.x, box.y - ego.y
    distance = math.hypot(dx, dy)
    bearing = math.atan2(dy, dx)
    circumradius = math.hypot(box.length, box.width) / 2.0
    if distance <= circumradius:
        # Ego is effectively inside the object's footprint circle: treat as
        # filling the whole view.
        return AngularInterval(bearing, math.pi), distance
    half_width = math.atan(circumradius / distance)
    return AngularInterval(bearing, half_width), distance


@dataclass(frozen=True)
class VisibilityModel:
    """Range + occlusion visibility for a scanning sensor.

    Attributes:
        max_range: Detection range cutoff in meters.
        min_visible_fraction: Minimum unoccluded fraction of an object's
            angular interval for it to count as visible.
    """

    max_range: float = 80.0
    min_visible_fraction: float = 0.35

    def visible_fraction(
        self, ego: Pose2D, target: Box3D, others: list[Box3D]
    ) -> float:
        """Unoccluded fraction of ``target``'s angular interval.

        ``others`` are candidate occluders; only those strictly closer to
        the ego than the target cast shadows on it.
        """
        target_iv, target_dist = _interval_from(ego, target)
        if target_dist > self.max_range:
            return 0.0
        if target_iv.half_width <= 0:
            return 1.0

        # Collect shadow sub-intervals of the target interval, expressed as
        # offsets in [-hw, hw] around the target bearing, then merge.
        shadows: list[tuple[float, float]] = []
        for box in others:
            occ_iv, occ_dist = _interval_from(ego, box)
            if occ_dist >= target_dist:
                continue
            diff = (occ_iv.center - target_iv.center + math.pi) % (2 * math.pi) - math.pi
            lo = max(-target_iv.half_width, diff - occ_iv.half_width)
            hi = min(target_iv.half_width, diff + occ_iv.half_width)
            if hi > lo:
                shadows.append((lo, hi))

        if not shadows:
            return 1.0
        shadows.sort()
        covered = 0.0
        cur_lo, cur_hi = shadows[0]
        for lo, hi in shadows[1:]:
            if lo > cur_hi:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        covered += cur_hi - cur_lo
        total = 2 * target_iv.half_width
        return max(0.0, 1.0 - covered / total)

    def is_visible(self, ego: Pose2D, target: Box3D, others: list[Box3D]) -> bool:
        return self.visible_fraction(ego, target, others) >= self.min_visible_fraction

    # ------------------------------------------------------------------
    def visibility_table(self, scene: WorldScene) -> dict[tuple[str, int], bool]:
        """Visibility of every (object, frame) pair in a scene."""
        table: dict[tuple[str, int], bool] = {}
        for frame in range(scene.n_frames):
            ego = scene.ego_poses[frame]
            present = scene.boxes_at(frame)
            boxes = [box for _, box in present]
            for i, (obj, box) in enumerate(present):
                others = boxes[:i] + boxes[i + 1 :]
                table[(obj.object_id, frame)] = self.is_visible(ego, box, others)
        return table


def visible_objects(
    scene: WorldScene, frame: int, model: VisibilityModel | None = None
) -> list[tuple[WorldObject, Box3D]]:
    """Objects visible to the sensor at ``frame``.

    Convenience wrapper over :class:`VisibilityModel` for a single frame.
    """
    vis = model or VisibilityModel()
    ego = scene.ego_poses[frame]
    present = scene.boxes_at(frame)
    boxes = [box for _, box in present]
    out = []
    for i, (obj, box) in enumerate(present):
        others = boxes[:i] + boxes[i + 1 :]
        if vis.is_visible(ego, box, others):
            out.append((obj, box))
    return out
