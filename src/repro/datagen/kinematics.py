"""Motion models for world objects and the ego vehicle.

Each motion model produces a sequence of planar poses sampled at a fixed
frame rate. The models cover the behaviours that matter for Fixy's
transition features: constant-velocity cruising, smooth turns, stop-and-go
traffic, and parked objects. Pedestrians get a wandering model with small
heading diffusion.

All models are deterministic given a seeded ``numpy.random.Generator``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.geometry import Pose2D
from repro.geometry.box import wrap_angle

__all__ = [
    "MotionModel",
    "ParkedModel",
    "ConstantVelocityModel",
    "ConstantTurnModel",
    "StopAndGoModel",
    "WanderModel",
    "simulate_trajectory",
]


class MotionModel(ABC):
    """Generates planar poses for an object over time."""

    @abstractmethod
    def poses(
        self, start: Pose2D, n_frames: int, dt: float, rng: np.random.Generator
    ) -> list[Pose2D]:
        """Return ``n_frames`` poses starting at (and including) ``start``."""


@dataclass(frozen=True)
class ParkedModel(MotionModel):
    """Object never moves (parked car, standing pedestrian)."""

    def poses(self, start, n_frames, dt, rng):
        return [start] * n_frames


@dataclass(frozen=True)
class ConstantVelocityModel(MotionModel):
    """Straight-line motion at a fixed speed along the starting heading.

    Small optional heading noise models lane wobble without changing the
    overall direction of travel.
    """

    speed: float
    heading_noise: float = 0.0

    def poses(self, start, n_frames, dt, rng):
        out = [start]
        pose = start
        for _ in range(n_frames - 1):
            theta = pose.theta
            if self.heading_noise > 0:
                theta += float(rng.normal(0.0, self.heading_noise))
            pose = Pose2D(
                pose.x + self.speed * dt * math.cos(theta),
                pose.y + self.speed * dt * math.sin(theta),
                theta,
            )
            out.append(pose)
        return out


@dataclass(frozen=True)
class ConstantTurnModel(MotionModel):
    """Constant speed, constant yaw-rate (CTRV) motion — smooth turns."""

    speed: float
    yaw_rate: float  # rad/s, positive = left turn

    def poses(self, start, n_frames, dt, rng):
        out = [start]
        pose = start
        for _ in range(n_frames - 1):
            theta = wrap_angle(pose.theta + self.yaw_rate * dt)
            pose = Pose2D(
                pose.x + self.speed * dt * math.cos(theta),
                pose.y + self.speed * dt * math.sin(theta),
                theta,
            )
            out.append(pose)
        return out


@dataclass(frozen=True)
class StopAndGoModel(MotionModel):
    """Traffic-like motion alternating between cruising and stopping.

    The object decelerates to a stop, waits, then accelerates back to its
    cruise speed, with phase durations drawn once per instance from the
    provided ranges. This produces the near-zero-velocity observations that
    make velocity feature distributions realistically heavy near zero.
    """

    cruise_speed: float
    stop_duration_s: tuple[float, float] = (1.0, 3.0)
    go_duration_s: tuple[float, float] = (2.0, 5.0)
    accel: float = 2.5  # m/s^2 magnitude for both speeding up and braking

    def poses(self, start, n_frames, dt, rng):
        out = [start]
        pose = start
        speed = self.cruise_speed
        # Phase machine: "go" -> "brake" -> "stop" -> "accel" -> "go" ...
        phase = "go"
        phase_left = float(rng.uniform(*self.go_duration_s))
        for _ in range(n_frames - 1):
            if phase == "go":
                speed = self.cruise_speed
            elif phase == "brake":
                speed = max(0.0, speed - self.accel * dt)
                if speed == 0.0:
                    phase = "stop"
                    phase_left = float(rng.uniform(*self.stop_duration_s))
            elif phase == "stop":
                speed = 0.0
            elif phase == "accel":
                speed = min(self.cruise_speed, speed + self.accel * dt)
                if speed == self.cruise_speed:
                    phase = "go"
                    phase_left = float(rng.uniform(*self.go_duration_s))

            if phase in ("go", "stop"):
                phase_left -= dt
                if phase_left <= 0:
                    phase = "brake" if phase == "go" else "accel"

            pose = Pose2D(
                pose.x + speed * dt * math.cos(pose.theta),
                pose.y + speed * dt * math.sin(pose.theta),
                pose.theta,
            )
            out.append(pose)
        return out


@dataclass(frozen=True)
class WanderModel(MotionModel):
    """Pedestrian-style motion: slow speed with heading diffusion."""

    speed: float
    heading_diffusion: float = 0.15  # rad per sqrt(s)

    def poses(self, start, n_frames, dt, rng):
        out = [start]
        pose = start
        sigma = self.heading_diffusion * math.sqrt(dt)
        for _ in range(n_frames - 1):
            theta = wrap_angle(pose.theta + float(rng.normal(0.0, sigma)))
            pose = Pose2D(
                pose.x + self.speed * dt * math.cos(theta),
                pose.y + self.speed * dt * math.sin(theta),
                theta,
            )
            out.append(pose)
        return out


def simulate_trajectory(
    model: MotionModel,
    start: Pose2D,
    n_frames: int,
    dt: float,
    rng: np.random.Generator,
) -> list[Pose2D]:
    """Run a motion model, validating arguments.

    Args:
        model: The motion model.
        start: Initial pose (included as frame 0).
        n_frames: Number of poses to produce (>= 1).
        dt: Seconds between frames (> 0).
        rng: Seeded generator; models are deterministic given it.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    poses = model.poses(start, n_frames, dt, rng)
    if len(poses) != n_frames:
        raise RuntimeError(
            f"{type(model).__name__} produced {len(poses)} poses, expected {n_frames}"
        )
    return poses
