"""Object taxonomy and physical priors for the synthetic AV world.

The paper evaluates on the "common classes of car, truck, pedestrian, and
motorcycle" (§8.1). Each class carries priors over physical dimensions and
speed; the world generator samples per-object dimensions from these priors
and the LOA volume/velocity features later *re-learn* the induced
distributions from labeled data — closing the same loop the paper closes
with real datasets.

Dimension priors are loosely based on published statistics for urban AV
datasets (typical sedan ~4.5x1.9x1.7 m, etc.). Absolute realism is not
required; what matters is that each class occupies a distinct, unimodal
region of feature space, which is the property Fixy's class-conditional
feature distributions exploit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["ObjectClass", "ClassPrior", "CLASS_PRIORS", "sample_dimensions"]


class ObjectClass(str, enum.Enum):
    """Perception object classes used throughout the reproduction."""

    CAR = "car"
    TRUCK = "truck"
    PEDESTRIAN = "pedestrian"
    MOTORCYCLE = "motorcycle"

    @classmethod
    def from_string(cls, name: str) -> "ObjectClass":
        try:
            return cls(name.lower())
        except ValueError as exc:
            valid = ", ".join(c.value for c in cls)
            raise ValueError(f"unknown object class {name!r}; expected one of {valid}") from exc


@dataclass(frozen=True)
class ClassPrior:
    """Physical priors for one object class.

    Dimensions are parameterized as lognormal around the given means so
    sampled sizes are always positive and mildly right-skewed, matching
    real vehicle-dimension statistics.

    Attributes:
        length_mean, width_mean, height_mean: Mean dimensions (m).
        dim_sigma: Lognormal sigma shared across the three dimensions.
        speed_mean: Typical moving speed (m/s).
        speed_sigma: Spread of moving speed (m/s).
        stationary_prob: Probability that a spawned instance is parked /
            standing still for the whole scene.
        z_center: Typical center height above ground (m).
    """

    length_mean: float
    width_mean: float
    height_mean: float
    dim_sigma: float
    speed_mean: float
    speed_sigma: float
    stationary_prob: float
    z_center: float


CLASS_PRIORS: dict[ObjectClass, ClassPrior] = {
    ObjectClass.CAR: ClassPrior(
        length_mean=4.6,
        width_mean=1.9,
        height_mean=1.7,
        dim_sigma=0.08,
        speed_mean=9.0,
        speed_sigma=3.0,
        stationary_prob=0.35,
        z_center=0.85,
    ),
    ObjectClass.TRUCK: ClassPrior(
        length_mean=8.5,
        width_mean=2.6,
        height_mean=3.2,
        dim_sigma=0.12,
        speed_mean=7.5,
        speed_sigma=2.5,
        stationary_prob=0.30,
        z_center=1.6,
    ),
    ObjectClass.PEDESTRIAN: ClassPrior(
        length_mean=0.7,
        width_mean=0.7,
        height_mean=1.75,
        dim_sigma=0.10,
        speed_mean=1.4,
        speed_sigma=0.4,
        stationary_prob=0.25,
        z_center=0.9,
    ),
    ObjectClass.MOTORCYCLE: ClassPrior(
        length_mean=2.2,
        width_mean=0.9,
        height_mean=1.4,
        dim_sigma=0.10,
        speed_mean=8.0,
        speed_sigma=3.0,
        stationary_prob=0.15,
        z_center=0.7,
    ),
}


def sample_dimensions(
    object_class: ObjectClass, rng: np.random.Generator
) -> tuple[float, float, float]:
    """Sample ``(length, width, height)`` for one instance of a class.

    Dimensions are lognormal around the class means with the class's
    ``dim_sigma``; the three axes are sampled independently.
    """
    prior = CLASS_PRIORS[object_class]
    factors = np.exp(rng.normal(0.0, prior.dim_sigma, size=3))
    return (
        float(prior.length_mean * factors[0]),
        float(prior.width_mean * factors[1]),
        float(prior.height_mean * factors[2]),
    )


def sample_speed(object_class: ObjectClass, rng: np.random.Generator) -> float:
    """Sample a positive moving speed (m/s) for one instance of a class."""
    prior = CLASS_PRIORS[object_class]
    speed = rng.normal(prior.speed_mean, prior.speed_sigma)
    return float(max(speed, 0.3))
