"""Baselines: ad-hoc model assertions and uncertainty sampling."""

from repro.baselines.model_assertions import (
    AppearAssertion,
    ConsistencyAssertion,
    FlaggedItem,
    FlickerAssertion,
    ModelAssertion,
    MultiboxAssertion,
    run_assertions,
)
from repro.baselines.ordering import (
    item_confidence,
    order_by_confidence,
    order_by_severity,
    order_randomly,
)
from repro.baselines.uncertainty import (
    UncertainItem,
    uncertainty_sample_observations,
    uncertainty_sample_tracks,
)

__all__ = [
    "AppearAssertion",
    "ConsistencyAssertion",
    "FlaggedItem",
    "FlickerAssertion",
    "ModelAssertion",
    "MultiboxAssertion",
    "UncertainItem",
    "item_confidence",
    "order_by_confidence",
    "order_by_severity",
    "order_randomly",
    "run_assertions",
    "uncertainty_sample_observations",
    "uncertainty_sample_tracks",
]
