"""Ad-hoc model assertions (MAs) from Kang et al. [11].

The paper compares Fixy against hand-written assertions with ad-hoc
severity scores. Implemented from their descriptions in §8 of the target
paper and the MLSys'20 model-assertions paper:

- :class:`ConsistencyAssertion` (§8.2 baseline) — "a prediction of a box
  of a car should not appear and disappear in subsequent frames": flags
  model-only tracks whose identity/attributes are inconsistent over time
  (class changes, gaps, abrupt box changes). Used for finding *label*
  errors by flagging model tracks that overlap no human label.
- :class:`AppearAssertion` (§8.4) — an observation should have
  observations in nearby timestamps; flags very short tracks.
- :class:`FlickerAssertion` (§8.4) — an observation should not appear
  and disappear rapidly; flags tracks with missing interior frames.
- :class:`MultiboxAssertion` (§8.4) — three boxes should not mutually
  overlap in one frame.

Each assertion returns flagged items with an ad-hoc severity score; the
paper orders flagged items randomly or by model confidence — both
orderings are provided by :mod:`repro.baselines.ordering`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.model import Scene, Track
from repro.geometry import compute_iou

__all__ = [
    "FlaggedItem",
    "ModelAssertion",
    "ConsistencyAssertion",
    "AppearAssertion",
    "FlickerAssertion",
    "MultiboxAssertion",
    "run_assertions",
]


@dataclass(frozen=True)
class FlaggedItem:
    """One item flagged by an assertion.

    Attributes:
        item: The flagged Track (or bundle list for multibox).
        severity: The assertion's ad-hoc severity score (higher = worse).
        assertion: Name of the assertion that fired.
        scene_id: Scene the item came from.
        track_id: Enclosing track id (or a synthetic id for multibox
            groups).
    """

    item: object
    severity: float
    assertion: str
    scene_id: str
    track_id: str
    metadata: dict = field(default_factory=dict, compare=False, hash=False)


class ModelAssertion(ABC):
    """A black-box check over model inputs/outputs returning flags."""

    name: str = "assertion"

    @abstractmethod
    def check_scene(self, scene: Scene) -> list[FlaggedItem]:
        """All items in the scene that violate the assertion."""


class ConsistencyAssertion(ModelAssertion):
    """Flags model-only tracks whose attributes are inconsistent in time.

    The severity score is ad hoc (the point of the paper's comparison):
    a weighted count of class switches, temporal gaps, and abrupt
    box-volume jumps along the track. Model-only tracks with *no*
    inconsistency still get a small severity so that, like the original
    assertion, every unlabeled model track is surfaceable.
    """

    name = "consistency"

    def __init__(
        self,
        volume_jump_ratio: float = 1.6,
        min_observations: int = 2,
        require_model_only: bool = True,
    ):
        self.volume_jump_ratio = volume_jump_ratio
        self.min_observations = min_observations
        self.require_model_only = require_model_only

    def check_scene(self, scene: Scene) -> list[FlaggedItem]:
        out = []
        for track in scene.tracks:
            if self.require_model_only and track.has_human:
                continue
            if not track.has_model:
                continue
            if track.n_observations < self.min_observations:
                continue
            severity = self._severity(track)
            out.append(
                FlaggedItem(
                    item=track,
                    severity=severity,
                    assertion=self.name,
                    scene_id=scene.scene_id,
                    track_id=track.track_id,
                )
            )
        return out

    def _severity(self, track: Track) -> float:
        classes = [b.representative().object_class for b in track.bundles]
        class_switches = sum(1 for a, b in zip(classes, classes[1:]) if a != b)
        frames = track.frames
        gaps = sum(1 for a, b in zip(frames, frames[1:]) if b - a > 1)
        volume_jumps = 0
        for before, after in track.transitions():
            v0 = before.representative().box.volume
            v1 = after.representative().box.volume
            ratio = max(v0, v1) / max(min(v0, v1), 1e-9)
            if ratio > self.volume_jump_ratio:
                volume_jumps += 1
        return 1.0 + 3.0 * class_switches + 2.0 * gaps + 1.0 * volume_jumps


class AppearAssertion(ModelAssertion):
    """Flags tracks shorter than ``min_frames`` — an object "should have
    observations in nearby timestamps" (§8.4)."""

    name = "appear"

    def __init__(self, min_frames: int = 3, model_only: bool = True):
        self.min_frames = min_frames
        self.model_only = model_only

    def check_scene(self, scene: Scene) -> list[FlaggedItem]:
        out = []
        for track in scene.tracks:
            if self.model_only and track.has_human:
                continue
            if not track.has_model:
                continue
            if len(track.bundles) < self.min_frames:
                severity = float(self.min_frames - len(track.bundles))
                out.append(
                    FlaggedItem(
                        item=track,
                        severity=severity,
                        assertion=self.name,
                        scene_id=scene.scene_id,
                        track_id=track.track_id,
                    )
                )
        return out


class FlickerAssertion(ModelAssertion):
    """Flags tracks that appear and disappear rapidly: one or more
    missing interior frames (§8.4)."""

    name = "flicker"

    def __init__(self, model_only: bool = True):
        self.model_only = model_only

    def check_scene(self, scene: Scene) -> list[FlaggedItem]:
        out = []
        for track in scene.tracks:
            if self.model_only and track.has_human:
                continue
            if not track.has_model:
                continue
            frames = track.frames
            gaps = sum(1 for a, b in zip(frames, frames[1:]) if b - a > 1)
            if gaps > 0:
                out.append(
                    FlaggedItem(
                        item=track,
                        severity=float(gaps),
                        assertion=self.name,
                        scene_id=scene.scene_id,
                        track_id=track.track_id,
                        metadata={"gaps": gaps},
                    )
                )
        return out


class MultiboxAssertion(ModelAssertion):
    """Flags frames where ``min_boxes``+ model boxes mutually overlap
    ("3 boxes should not overlap", §8.4)."""

    name = "multibox"

    def __init__(self, iou_threshold: float = 0.1, min_boxes: int = 3):
        self.iou_threshold = iou_threshold
        self.min_boxes = min_boxes

    def check_scene(self, scene: Scene) -> list[FlaggedItem]:
        # Collect model observations per frame across all tracks.
        by_frame: dict[int, list] = {}
        frame_tracks: dict[int, dict[str, str]] = {}
        for track in scene.tracks:
            for bundle in track.bundles:
                for obs in bundle.observations:
                    if obs.is_model:
                        by_frame.setdefault(obs.frame, []).append(obs)
                        frame_tracks.setdefault(obs.frame, {})[obs.obs_id] = (
                            track.track_id
                        )

        out = []
        for frame, observations in sorted(by_frame.items()):
            if len(observations) < self.min_boxes:
                continue
            # Find mutually-overlapping cliques greedily: for each obs,
            # count partners overlapping above threshold.
            for i, anchor in enumerate(observations):
                group = [anchor]
                for other in observations[i + 1 :]:
                    if all(
                        compute_iou(member.box, other.box) > self.iou_threshold
                        for member in group
                    ):
                        group.append(other)
                if len(group) >= self.min_boxes:
                    track_ids = sorted(
                        {frame_tracks[frame][o.obs_id] for o in group}
                    )
                    out.append(
                        FlaggedItem(
                            item=group,
                            severity=float(len(group)),
                            assertion=self.name,
                            scene_id=scene.scene_id,
                            track_id="+".join(track_ids),
                            metadata={"frame": frame},
                        )
                    )
                    break  # one flag per frame is enough
        return out


def run_assertions(
    assertions: list[ModelAssertion], scenes: Scene | list[Scene]
) -> list[FlaggedItem]:
    """Run several assertions over scenes, concatenating flags."""
    if isinstance(scenes, Scene):
        scenes = [scenes]
    out: list[FlaggedItem] = []
    for scene in scenes:
        for assertion in assertions:
            out.extend(assertion.check_scene(scene))
    return out
