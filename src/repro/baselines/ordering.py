"""Orderings for assertion-flagged items.

The paper's Table 3 compares "Ad-hoc MA (rand)" and "Ad-hoc MA (conf)":
the same assertion output ordered randomly or by model confidence. The
assertion severity itself is ad hoc, which is exactly the calibration
problem LOA solves — so the baselines order flagged items by an external
signal.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.model_assertions import FlaggedItem
from repro.core.model import Observation, Track

__all__ = [
    "order_randomly",
    "order_by_confidence",
    "order_by_severity",
    "item_confidence",
]


def item_confidence(flagged: FlaggedItem) -> float:
    """Mean model confidence of the flagged item's observations."""
    item = flagged.item
    if isinstance(item, Track):
        observations = item.observations
    elif isinstance(item, list):
        observations = item
    elif isinstance(item, Observation):
        observations = [item]
    else:  # an ObservationBundle
        observations = list(item.observations)
    confs = [
        o.confidence
        for o in observations
        if o.confidence is not None
    ]
    if not confs:
        return 0.0
    return float(np.mean(confs))


def order_randomly(
    flagged: list[FlaggedItem], seed: int = 0
) -> list[FlaggedItem]:
    """Uniform random order (deterministic under ``seed``)."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(flagged))
    return [flagged[i] for i in order]


def order_by_confidence(
    flagged: list[FlaggedItem], descending: bool = True
) -> list[FlaggedItem]:
    """Order by mean model confidence.

    Descending by default: for missing-label search, the most confident
    unlabeled model tracks are the most plausible real objects.
    """
    return sorted(
        flagged, key=item_confidence, reverse=descending
    )


def order_by_severity(flagged: list[FlaggedItem]) -> list[FlaggedItem]:
    """Order by the assertion's own ad-hoc severity, highest first."""
    return sorted(flagged, key=lambda f: f.severity, reverse=True)
