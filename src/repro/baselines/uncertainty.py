"""Uncertainty sampling baseline (§8.4).

Standard active-learning practice [26]: surface predictions whose
confidence is closest to a threshold (maximum uncertainty). The paper
samples "predictions around a confidence threshold" and shows Fixy finds
high-confidence errors (≥95%) that uncertainty sampling structurally
cannot: a confidently-wrong prediction is, by definition, far from the
uncertainty band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Observation, Scene, Track

__all__ = ["UncertainItem", "uncertainty_sample_observations", "uncertainty_sample_tracks"]


@dataclass(frozen=True)
class UncertainItem:
    """One item surfaced by uncertainty sampling."""

    item: object
    uncertainty: float  # higher = closer to the threshold
    scene_id: str
    track_id: str


def _uncertainty(confidence: float, threshold: float) -> float:
    """Closeness to the decision threshold, in ``(0, 1]``."""
    return 1.0 - abs(confidence - threshold)


def uncertainty_sample_observations(
    scenes: Scene | list[Scene], threshold: float = 0.5
) -> list[UncertainItem]:
    """Model observations ordered by closeness to ``threshold``."""
    if isinstance(scenes, Scene):
        scenes = [scenes]
    out: list[UncertainItem] = []
    for scene in scenes:
        for track in scene.tracks:
            for obs in track.observations:
                if not obs.is_model or obs.confidence is None:
                    continue
                out.append(
                    UncertainItem(
                        item=obs,
                        uncertainty=_uncertainty(obs.confidence, threshold),
                        scene_id=scene.scene_id,
                        track_id=track.track_id,
                    )
                )
    out.sort(key=lambda u: u.uncertainty, reverse=True)
    return out


def uncertainty_sample_tracks(
    scenes: Scene | list[Scene],
    threshold: float = 0.5,
    model_only: bool = True,
) -> list[UncertainItem]:
    """Model tracks ordered by the uncertainty of their least-confident
    observation (a track is as suspicious as its shakiest box)."""
    if isinstance(scenes, Scene):
        scenes = [scenes]
    out: list[UncertainItem] = []
    for scene in scenes:
        for track in scene.tracks:
            if model_only and track.has_human:
                continue
            confs = [
                o.confidence
                for o in track.observations
                if o.is_model and o.confidence is not None
            ]
            if not confs:
                continue
            best = max(_uncertainty(c, threshold) for c in confs)
            out.append(
                UncertainItem(
                    item=track,
                    uncertainty=best,
                    scene_id=scene.scene_id,
                    track_id=track.track_id,
                )
            )
    out.sort(key=lambda u: u.uncertainty, reverse=True)
    return out
