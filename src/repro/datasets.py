"""Ready-made synthetic datasets mirroring the paper's evaluation data.

The paper evaluates on (a) the Lyft Level 5 perception dataset — 46
validation scenes, noisy vendor labels, a detector trained on that noisy
data — and (b) an internal 13-scene dataset with audited labels and a
better-calibrated detector. Neither is available offline, so this module
composes the simulator substrates into two equivalent synthetic datasets
(see DESIGN.md §2 for the substitution argument):

- ``synthetic-lyft``: noisy vendor profile + public detector profile;
- ``synthetic-internal``: clean vendor profile + internal detector
  profile.

Each built dataset carries: per-scene ground truth, raw observations from
both sources, the associated LOA scene (with ego poses attached for the
distance feature), the injected-error ledger, and separate *training*
scenes (human labels only — the organizational resource Fixy learns
from).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.association import TrackBuilder
from repro.core.model import Observation, Scene
from repro.datagen import SceneConfig, SceneGenerator, VisibilityModel, WorldScene
from repro.labelers import (
    CLEAN_VENDOR,
    INTERNAL_DETECTOR,
    NOISY_VENDOR,
    PUBLIC_DETECTOR,
    Auditor,
    DetectorConfig,
    DetectorModel,
    ErrorLedger,
    HumanLabeler,
    HumanLabelerConfig,
)

__all__ = [
    "DatasetProfile",
    "LabeledScene",
    "BuiltDataset",
    "PROFILES",
    "SYNTHETIC_LYFT",
    "SYNTHETIC_INTERNAL",
    "build_dataset",
    "build_labeled_scene",
]


@dataclass(frozen=True)
class DatasetProfile:
    """Everything needed to synthesize one of the paper's datasets."""

    name: str
    vendor: HumanLabelerConfig
    detector: DetectorConfig
    scene_config: SceneConfig = SceneConfig()
    n_train_scenes: int = 10
    n_val_scenes: int = 46
    seed: int = 0


SYNTHETIC_LYFT = DatasetProfile(
    name="synthetic-lyft",
    vendor=NOISY_VENDOR,
    detector=PUBLIC_DETECTOR,
    n_train_scenes=10,
    n_val_scenes=46,
    seed=1000,
)
"""The Lyft-like dataset: 46 validation scenes, noisy labels (§8.1)."""

SYNTHETIC_INTERNAL = DatasetProfile(
    name="synthetic-internal",
    vendor=CLEAN_VENDOR,
    detector=INTERNAL_DETECTOR,
    n_train_scenes=10,
    n_val_scenes=13,
    seed=2000,
)
"""The internal-like dataset: 13 audited scenes (§8.1)."""

#: Profiles addressable by name — the registry the CLI and the
#: declarative :class:`repro.api.SceneSource` resolve against.
PROFILES = {"lyft": SYNTHETIC_LYFT, "internal": SYNTHETIC_INTERNAL}


@dataclass
class LabeledScene:
    """One evaluation scene with everything the experiments need."""

    world: WorldScene
    scene: Scene
    human_observations: list[Observation]
    model_observations: list[Observation]
    ledger: ErrorLedger

    @property
    def scene_id(self) -> str:
        return self.world.scene_id

    def auditor(self) -> Auditor:
        return Auditor(self.world, self.ledger)


@dataclass
class BuiltDataset:
    """A complete synthetic dataset: training resource + labeled val set."""

    profile: DatasetProfile
    train_scenes: list[Scene] = field(default_factory=list)
    val_scenes: list[LabeledScene] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.profile.name


def _attach_ego(scene: Scene, world: WorldScene) -> Scene:
    scene.metadata["ego_poses"] = list(world.ego_poses)
    return scene


def build_labeled_scene(
    world: WorldScene,
    vendor: HumanLabelerConfig,
    detector: DetectorConfig,
    seed: int,
    visibility: VisibilityModel | None = None,
    builder: TrackBuilder | None = None,
) -> LabeledScene:
    """Label one world scene with both sources and associate the result."""
    vis = visibility or VisibilityModel()
    track_builder = builder or TrackBuilder()
    ledger = ErrorLedger()
    human_obs, _ = HumanLabeler(vendor, vis).label_scene(world, seed=seed, ledger=ledger)
    model_obs, _ = DetectorModel(detector, vis).predict_scene(
        world, seed=seed + 1, ledger=ledger
    )
    scene = track_builder.build_scene(
        world.scene_id, world.dt, human_obs + model_obs
    )
    _attach_ego(scene, world)
    return LabeledScene(
        world=world,
        scene=scene,
        human_observations=human_obs,
        model_observations=model_obs,
        ledger=ledger,
    )


def build_dataset(
    profile: DatasetProfile,
    n_train_scenes: int | None = None,
    n_val_scenes: int | None = None,
) -> BuiltDataset:
    """Synthesize a full dataset from a profile.

    Training scenes contain human labels only (the existing organizational
    resource); validation scenes carry both sources plus ground truth and
    the error ledger for automatic auditing.
    """
    n_train = n_train_scenes if n_train_scenes is not None else profile.n_train_scenes
    n_val = n_val_scenes if n_val_scenes is not None else profile.n_val_scenes
    generator = SceneGenerator(profile.scene_config)
    vis = VisibilityModel()
    builder = TrackBuilder()

    dataset = BuiltDataset(profile=profile)

    train_worlds = generator.generate_many(
        n_train, seed=profile.seed, prefix=f"{profile.name}-train"
    )
    for i, world in enumerate(train_worlds):
        human_obs, _ = HumanLabeler(profile.vendor, vis).label_scene(
            world, seed=profile.seed + 10_000 + i
        )
        scene = builder.build_scene(world.scene_id, world.dt, human_obs)
        _attach_ego(scene, world)
        dataset.train_scenes.append(scene)

    val_worlds = generator.generate_many(
        n_val, seed=profile.seed + 1, prefix=f"{profile.name}-val"
    )
    for i, world in enumerate(val_worlds):
        dataset.val_scenes.append(
            build_labeled_scene(
                world,
                profile.vendor,
                profile.detector,
                seed=profile.seed + 20_000 + i,
                visibility=vis,
                builder=builder,
            )
        )
    return dataset
