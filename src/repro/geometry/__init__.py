"""Geometric primitives: oriented 3D boxes, IoU, and planar transforms."""

from repro.geometry.box import Box3D, centroid, wrap_angle, wrap_angles
from repro.geometry.iou import (
    bev_iou,
    compute_iou,
    convex_intersection_area,
    iou_3d,
    pairwise_center_distance,
    pairwise_iou,
    polygon_area,
)
from repro.geometry.transforms import Pose2D, relative_pose, transform_box

__all__ = [
    "Box3D",
    "Pose2D",
    "bev_iou",
    "centroid",
    "compute_iou",
    "convex_intersection_area",
    "iou_3d",
    "pairwise_center_distance",
    "pairwise_iou",
    "polygon_area",
    "relative_pose",
    "transform_box",
    "wrap_angle",
    "wrap_angles",
]
