"""Intersection-over-union for oriented boxes.

Association in Fixy is driven by box overlap (the worked example in the
paper associates observations with ``compute_iou(box1, box2) > 0.5``), so
this module implements exact BEV IoU for oriented rectangles via convex
polygon clipping (Sutherland–Hodgman) plus a z-extent product for 3D IoU.

Everything here is pure NumPy/stdlib — no external geometry package.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.box import Box3D

__all__ = [
    "polygon_area",
    "clip_polygon",
    "convex_intersection_area",
    "bev_iou",
    "iou_3d",
    "compute_iou",
    "pairwise_iou",
    "pairwise_center_distance",
]


def polygon_area(vertices: np.ndarray) -> float:
    """Signed-area magnitude of a simple polygon via the shoelace formula.

    Args:
        vertices: ``(n, 2)`` array of polygon vertices in order.

    Returns:
        Non-negative area. An empty or degenerate (<3 vertex) polygon has
        area 0.
    """
    verts = np.asarray(vertices, dtype=float)
    if verts.ndim != 2 or verts.shape[0] < 3:
        return 0.0
    x = verts[:, 0]
    y = verts[:, 1]
    return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)


def clip_polygon(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Clip ``subject`` polygon by convex ``clip`` polygon (Sutherland–Hodgman).

    Both polygons must be given counter-clockwise. Returns the clipped
    polygon as an ``(m, 2)`` array (possibly empty).
    """
    output = [tuple(p) for p in np.asarray(subject, dtype=float)]
    clip_pts = np.asarray(clip, dtype=float)
    n_clip = len(clip_pts)

    for i in range(n_clip):
        if not output:
            break
        a = clip_pts[i]
        b = clip_pts[(i + 1) % n_clip]
        edge = (b[0] - a[0], b[1] - a[1])

        def inside(p: tuple[float, float]) -> bool:
            # Left-of-edge test for a CCW clip polygon.
            return edge[0] * (p[1] - a[1]) - edge[1] * (p[0] - a[0]) >= -1e-12

        def intersect(
            p: tuple[float, float], q: tuple[float, float]
        ) -> tuple[float, float]:
            # Line/line intersection between segment pq and the infinite
            # line through a-b. Caller guarantees p, q straddle the line so
            # the denominator is nonzero up to numerical noise.
            dpx, dpy = q[0] - p[0], q[1] - p[1]
            denom = edge[0] * dpy - edge[1] * dpx
            if abs(denom) < 1e-15:
                return q
            cross_p = edge[0] * (p[1] - a[1]) - edge[1] * (p[0] - a[0])
            t = -cross_p / denom
            return (p[0] + t * dpx, p[1] + t * dpy)

        input_pts = output
        output = []
        for j, current in enumerate(input_pts):
            previous = input_pts[j - 1]
            if inside(current):
                if not inside(previous):
                    output.append(intersect(previous, current))
                output.append(current)
            elif inside(previous):
                output.append(intersect(previous, current))

    if not output:
        return np.zeros((0, 2), dtype=float)
    return np.array(output, dtype=float)


def convex_intersection_area(poly_a: np.ndarray, poly_b: np.ndarray) -> float:
    """Area of the intersection of two convex CCW polygons."""
    return polygon_area(clip_polygon(poly_a, poly_b))


def _quick_reject(box_a: Box3D, box_b: Box3D) -> bool:
    """Cheap circumscribed-circle test to skip exact clipping."""
    reach_a = np.hypot(box_a.length, box_a.width) / 2.0
    reach_b = np.hypot(box_b.length, box_b.width) / 2.0
    return box_a.distance_to_box(box_b) > reach_a + reach_b


def bev_iou(box_a: Box3D, box_b: Box3D) -> float:
    """Bird's-eye-view IoU of two oriented boxes (exact).

    Returns a value in ``[0, 1]``. Boxes whose footprints cannot overlap
    (circumscribed circles disjoint) short-circuit to 0.
    """
    if _quick_reject(box_a, box_b):
        return 0.0
    inter = convex_intersection_area(box_a.bev_corners(), box_b.bev_corners())
    if inter <= 0.0:
        return 0.0
    union = box_a.bev_area + box_b.bev_area - inter
    if union <= 0.0:
        return 0.0
    return float(min(inter / union, 1.0))


def iou_3d(box_a: Box3D, box_b: Box3D) -> float:
    """Exact 3D IoU: BEV polygon intersection times z-extent overlap."""
    if _quick_reject(box_a, box_b):
        return 0.0
    z_overlap = min(box_a.z_max, box_b.z_max) - max(box_a.z_min, box_b.z_min)
    if z_overlap <= 0.0:
        return 0.0
    inter_bev = convex_intersection_area(box_a.bev_corners(), box_b.bev_corners())
    inter = inter_bev * z_overlap
    if inter <= 0.0:
        return 0.0
    union = box_a.volume + box_b.volume - inter
    if union <= 0.0:
        return 0.0
    return float(min(inter / union, 1.0))


def compute_iou(box_a: Box3D, box_b: Box3D, mode: str = "bev") -> float:
    """IoU entry point matching the paper's worked example.

    Args:
        box_a, box_b: The boxes to compare.
        mode: ``"bev"`` (default, used for association) or ``"3d"``.
    """
    if mode == "bev":
        return bev_iou(box_a, box_b)
    if mode == "3d":
        return iou_3d(box_a, box_b)
    raise ValueError(f"unknown IoU mode {mode!r}; expected 'bev' or '3d'")


def pairwise_iou(
    boxes_a: Sequence[Box3D], boxes_b: Sequence[Box3D], mode: str = "bev"
) -> np.ndarray:
    """Dense ``(len(a), len(b))`` IoU matrix.

    Used to build association affinity matrices. O(n*m) exact clipping with
    the quick-reject test keeping typical scenes fast.
    """
    out = np.zeros((len(boxes_a), len(boxes_b)), dtype=float)
    for i, a in enumerate(boxes_a):
        for j, b in enumerate(boxes_b):
            out[i, j] = compute_iou(a, b, mode=mode)
    return out


def pairwise_center_distance(
    boxes_a: Sequence[Box3D], boxes_b: Sequence[Box3D]
) -> np.ndarray:
    """Dense BEV center-distance matrix, a cheap alternative affinity."""
    if not boxes_a or not boxes_b:
        return np.zeros((len(boxes_a), len(boxes_b)), dtype=float)
    ca = np.array([b.center_xy for b in boxes_a], dtype=float)
    cb = np.array([b.center_xy for b in boxes_b], dtype=float)
    diff = ca[:, None, :] - cb[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])
