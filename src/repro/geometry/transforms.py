"""Planar rigid transforms (SE(2)) for ego-centric geometry.

The world simulator generates object trajectories in a fixed world frame,
but several LOA features (distance to AV) and the occlusion model reason in
the ego vehicle's frame. SE(2) is sufficient: AV datasets treat the ground
plane as locally flat and boxes carry their own z extent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.box import Box3D, wrap_angle

__all__ = ["Pose2D", "transform_box", "relative_pose"]


@dataclass(frozen=True)
class Pose2D:
    """A planar pose: translation ``(x, y)`` plus heading ``theta``.

    Composition follows the usual convention: ``a.compose(b)`` is the pose
    of frame ``b`` expressed in the parent frame of ``a``.
    """

    x: float
    y: float
    theta: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "theta", wrap_angle(self.theta))

    @staticmethod
    def identity() -> "Pose2D":
        return Pose2D(0.0, 0.0, 0.0)

    @property
    def translation(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    @property
    def rotation(self) -> np.ndarray:
        """The 2x2 rotation matrix of this pose."""
        c, s = math.cos(self.theta), math.sin(self.theta)
        return np.array([[c, -s], [s, c]], dtype=float)

    def matrix(self) -> np.ndarray:
        """Homogeneous 3x3 transform matrix."""
        mat = np.eye(3)
        mat[:2, :2] = self.rotation
        mat[:2, 2] = self.translation
        return mat

    def compose(self, other: "Pose2D") -> "Pose2D":
        """This pose followed by ``other`` (i.e. ``self * other``)."""
        rot = self.rotation
        tx, ty = rot @ other.translation + self.translation
        return Pose2D(float(tx), float(ty), self.theta + other.theta)

    def inverse(self) -> "Pose2D":
        """The pose mapping this frame back to its parent."""
        rot_t = self.rotation.T
        tx, ty = -(rot_t @ self.translation)
        return Pose2D(float(tx), float(ty), -self.theta)

    def apply(self, point: np.ndarray) -> np.ndarray:
        """Map a point (``(2,)`` array) from this frame to the parent frame."""
        pt = np.asarray(point, dtype=float)
        return self.rotation @ pt + self.translation

    def apply_inverse(self, point: np.ndarray) -> np.ndarray:
        """Map a parent-frame point into this frame."""
        pt = np.asarray(point, dtype=float)
        return self.rotation.T @ (pt - self.translation)

    def distance_to(self, other: "Pose2D") -> float:
        """Euclidean distance between the two translations."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def to_dict(self) -> dict:
        return {"x": self.x, "y": self.y, "theta": self.theta}

    @staticmethod
    def from_dict(data: dict) -> "Pose2D":
        return Pose2D(float(data["x"]), float(data["y"]), float(data.get("theta", 0.0)))


def transform_box(box: Box3D, pose: Pose2D) -> Box3D:
    """Express a world-frame box in the frame given by ``pose``.

    ``pose`` is the frame's pose in the world (e.g. ego pose); the result
    is the same physical box with coordinates relative to that frame.
    Height/z are unchanged apart from translation-free z (SE(2)).
    """
    local_xy = pose.apply_inverse(np.array([box.x, box.y]))
    return Box3D(
        x=float(local_xy[0]),
        y=float(local_xy[1]),
        z=box.z,
        length=box.length,
        width=box.width,
        height=box.height,
        yaw=wrap_angle(box.yaw - pose.theta),
    )


def relative_pose(frame_a: Pose2D, frame_b: Pose2D) -> Pose2D:
    """Pose of ``frame_b`` expressed in ``frame_a`` (both world-frame)."""
    return frame_a.inverse().compose(frame_b)
