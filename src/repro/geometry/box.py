"""3D bounding boxes for perception observations.

Boxes follow the convention used by AV perception datasets (e.g. the Lyft
Level 5 dataset): a box is parameterized by its center ``(x, y, z)``, its
size ``(length, width, height)``, and a yaw angle about the vertical axis.
``length`` extends along the box's heading, ``width`` across it, and
``height`` along z. All units are meters and radians.

The box is the fundamental geometric observation type consumed by every
layer above this one (association, LOA features, baselines), so it is kept
immutable and cheap to copy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Box3D", "wrap_angle", "wrap_angles", "box_from_dict"]


def wrap_angle(theta: float) -> float:
    """Wrap an angle in radians to the interval ``[-pi, pi)``.

    >>> wrap_angle(math.pi)
    -3.141592653589793
    >>> wrap_angle(0.0)
    0.0
    """
    return float((theta + math.pi) % (2.0 * math.pi) - math.pi)


def wrap_angles(theta: np.ndarray) -> np.ndarray:
    """Vectorized :func:`wrap_angle` (same formula, element-wise)."""
    return (np.asarray(theta, dtype=float) + math.pi) % (2.0 * math.pi) - math.pi


@dataclass(frozen=True)
class Box3D:
    """An oriented 3D bounding box.

    Attributes:
        x, y, z: Center coordinates in meters. ``z`` is the center height.
        length: Extent along the heading direction (meters, positive).
        width: Extent across the heading direction (meters, positive).
        height: Vertical extent (meters, positive).
        yaw: Heading angle in radians, wrapped to ``[-pi, pi)``.
    """

    x: float
    y: float
    z: float
    length: float
    width: float
    height: float
    yaw: float = 0.0

    def __post_init__(self) -> None:
        if self.length <= 0 or self.width <= 0 or self.height <= 0:
            raise ValueError(
                "box dimensions must be positive, got "
                f"(l={self.length}, w={self.width}, h={self.height})"
            )
        object.__setattr__(self, "yaw", wrap_angle(self.yaw))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        """Center as a ``(3,)`` array."""
        return np.array([self.x, self.y, self.z], dtype=float)

    @property
    def center_xy(self) -> np.ndarray:
        """Bird's-eye-view center as a ``(2,)`` array."""
        return np.array([self.x, self.y], dtype=float)

    @property
    def volume(self) -> float:
        """Box volume in cubic meters."""
        return self.length * self.width * self.height

    @property
    def bev_area(self) -> float:
        """Footprint area in square meters."""
        return self.length * self.width

    @property
    def z_min(self) -> float:
        return self.z - self.height / 2.0

    @property
    def z_max(self) -> float:
        return self.z + self.height / 2.0

    def distance_to(self, point: Sequence[float] | np.ndarray) -> float:
        """Euclidean BEV distance from the box center to ``point``.

        ``point`` may be 2D or 3D; only x/y are used. This matches the
        "distance to AV" feature in the paper, which is a ground-plane
        distance.
        """
        px, py = float(point[0]), float(point[1])
        return math.hypot(self.x - px, self.y - py)

    def distance_to_box(self, other: "Box3D") -> float:
        """Center-to-center BEV distance to another box."""
        return self.distance_to(other.center_xy)

    # ------------------------------------------------------------------
    # Corner geometry
    # ------------------------------------------------------------------
    def bev_corners(self) -> np.ndarray:
        """Footprint corners as a ``(4, 2)`` array, counter-clockwise.

        Corner order: front-left, rear-left, rear-right, front-right in the
        box frame, rotated by yaw and translated to the world frame.
        """
        half_l = self.length / 2.0
        half_w = self.width / 2.0
        local = np.array(
            [
                [half_l, half_w],
                [-half_l, half_w],
                [-half_l, -half_w],
                [half_l, -half_w],
            ],
            dtype=float,
        )
        c, s = math.cos(self.yaw), math.sin(self.yaw)
        rot = np.array([[c, -s], [s, c]], dtype=float)
        return local @ rot.T + self.center_xy

    def corners_3d(self) -> np.ndarray:
        """All eight corners as an ``(8, 3)`` array (bottom four first)."""
        bev = self.bev_corners()
        bottom = np.column_stack([bev, np.full(4, self.z_min)])
        top = np.column_stack([bev, np.full(4, self.z_max)])
        return np.vstack([bottom, top])

    def contains_point_bev(self, point: Sequence[float] | np.ndarray) -> bool:
        """Whether a 2D point lies inside the box footprint (inclusive)."""
        px, py = float(point[0]), float(point[1])
        dx, dy = px - self.x, py - self.y
        c, s = math.cos(-self.yaw), math.sin(-self.yaw)
        local_x = c * dx - s * dy
        local_y = s * dx + c * dy
        eps = 1e-12
        return (
            abs(local_x) <= self.length / 2.0 + eps
            and abs(local_y) <= self.width / 2.0 + eps
        )

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def translated(self, dx: float, dy: float, dz: float = 0.0) -> "Box3D":
        """Return a copy shifted by ``(dx, dy, dz)``."""
        return replace(self, x=self.x + dx, y=self.y + dy, z=self.z + dz)

    def rotated(self, dyaw: float) -> "Box3D":
        """Return a copy with yaw increased by ``dyaw`` (wrapped)."""
        return replace(self, yaw=wrap_angle(self.yaw + dyaw))

    def scaled(self, factor: float) -> "Box3D":
        """Return a copy with all three dimensions scaled by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            length=self.length * factor,
            width=self.width * factor,
            height=self.height * factor,
        )

    def jittered(
        self,
        rng: np.random.Generator,
        pos_sigma: float = 0.0,
        dim_sigma: float = 0.0,
        yaw_sigma: float = 0.0,
    ) -> "Box3D":
        """Return a copy perturbed by Gaussian noise.

        Dimension noise is multiplicative (lognormal-like, clipped to stay
        positive) so a small sigma perturbs small and large boxes
        proportionally — this matches how labeling jitter behaves in
        practice.
        """
        dx, dy, dz = rng.normal(0.0, pos_sigma, size=3) if pos_sigma > 0 else (0, 0, 0)
        dim_factors = (
            np.exp(rng.normal(0.0, dim_sigma, size=3)) if dim_sigma > 0 else (1, 1, 1)
        )
        dyaw = rng.normal(0.0, yaw_sigma) if yaw_sigma > 0 else 0.0
        return Box3D(
            x=self.x + float(dx),
            y=self.y + float(dy),
            z=self.z + float(dz),
            length=max(self.length * float(dim_factors[0]), 1e-3),
            width=max(self.width * float(dim_factors[1]), 1e-3),
            height=max(self.height * float(dim_factors[2]), 1e-3),
            yaw=self.yaw + float(dyaw),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return {
            "x": self.x,
            "y": self.y,
            "z": self.z,
            "length": self.length,
            "width": self.width,
            "height": self.height,
            "yaw": self.yaw,
        }

    @staticmethod
    def from_dict(data: dict) -> "Box3D":
        return Box3D(
            x=float(data["x"]),
            y=float(data["y"]),
            z=float(data["z"]),
            length=float(data["length"]),
            width=float(data["width"]),
            height=float(data["height"]),
            yaw=float(data.get("yaw", 0.0)),
        )


def box_from_dict(data: dict) -> Box3D:
    """Module-level alias of :meth:`Box3D.from_dict` for functional code."""
    return Box3D.from_dict(data)


def centroid(boxes: Iterable[Box3D]) -> np.ndarray:
    """Mean center of a collection of boxes as a ``(3,)`` array."""
    arr = np.array([b.center for b in boxes], dtype=float)
    if arr.size == 0:
        raise ValueError("centroid of an empty box collection is undefined")
    return arr.mean(axis=0)
