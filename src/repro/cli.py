"""Command-line interface for the reproduction.

Subcommands (also exposed as ``python -m repro.cli``):

- ``generate``    build a synthetic dataset and write its world scenes
                  (and per-scene error ledgers) to a directory;
- ``experiment``  run one named experiment and print the paper-style
                  table (``all`` runs the full §8 report);
- ``audit``       execute a declarative :class:`repro.api.AuditSpec`
                  (from a JSON file or flags) on any backend and print
                  the typed :class:`repro.api.AuditResult` as JSON;
- ``rank``        (deprecated: use ``audit``) fit on a dataset's
                  training split and print the top potential missing
                  labels of one validation scene;
- ``bench``       A/B the scalar reference vs the columnar fast path
                  (compile+rank) and optionally persist the report;
- ``serve``       run the streaming serving loop: line-delimited JSON
                  protocol requests on stdin, responses on stdout —
                  or, with ``--listen HOST:PORT``, behind a threaded
                  TCP listener, which makes the process a worker for
                  the distributed ``remote`` backend
                  (open/edit/rank/audit/close/stats/hello/health over
                  live scene sessions; see :mod:`repro.api.protocol`);
- ``warehouse``   manage a persistent content-addressed scene corpus
                  (:mod:`repro.warehouse`): ``ingest`` scene files or
                  a profile split, ``query`` fingerprints by indexed
                  predicate, ``stats`` for corpus counters. Audit a
                  warehouse out-of-core with
                  ``audit --warehouse PATH [--where JSON]``.

Examples::

    python -m repro.cli generate --profile lyft --out /tmp/lyft --val 4
    python -m repro.cli experiment table3
    python -m repro.cli audit --profile internal --scene 0 --top 10 \
        --model-only --backend sharded --workers 4
    python -m repro.cli audit --spec audit.json --out result.json
    python -m repro.cli bench --densities 10 100 --out BENCH_scaling.json
    python -m repro.cli serve --model model.json < requests.jsonl
    python -m repro.cli serve --model model.json --listen 0.0.0.0:7500 --strict
    python -m repro.cli audit --paths scene.json --model model.json \
        --backend remote --workers host1:7500 host2:7500
    python -m repro.cli warehouse ingest --db corpus.db --paths *.labels.json
    python -m repro.cli warehouse query --db corpus.db \
        --where '{"range": {"field": "n_tracks", "low": 10}}'
    python -m repro.cli audit --warehouse corpus.db --model model.json \
        --where '{"tag": "nightly"}' --batch 32

The ``audit`` and ``serve`` commands are thin clients of
:mod:`repro.api`; everything they do is equally available in-process.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

from repro.datasets import PROFILES as _PROFILES
from repro.datasets import build_dataset

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "table3",
    "recall",
    "scene_coverage",
    "missing_observation",
    "model_errors",
    "runtime",
    "figures",
    "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fixy / Learned Observation Assertions reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a dataset to disk")
    gen.add_argument("--profile", choices=sorted(_PROFILES), required=True)
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--train", type=int, default=None, help="training scenes")
    gen.add_argument("--val", type=int, default=None, help="validation scenes")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=_EXPERIMENTS)
    exp.add_argument("--train", type=int, default=None)
    exp.add_argument("--val", type=int, default=None)

    audit = sub.add_parser(
        "audit",
        help="execute a declarative AuditSpec and print the result JSON",
    )
    audit.add_argument(
        "--spec", default=None,
        help="path to an AuditSpec JSON file; when given, the spec is "
        "authoritative and the declarative flags below are rejected",
    )
    audit.add_argument("--profile", choices=sorted(_PROFILES), default=None)
    audit.add_argument("--train", type=int, default=None)
    audit.add_argument("--val", type=int, default=None)
    audit.add_argument(
        "--split", choices=["train", "val"], default="val",
        help="dataset split to audit (default val)",
    )
    audit.add_argument(
        "--scene", type=int, action="append", default=None,
        help="scene index within the split (repeatable; default: all)",
    )
    audit.add_argument(
        "--paths", nargs="+", default=None,
        help="scene JSON files (Scene.save / `generate` output) to audit "
        "instead of a profile split",
    )
    audit.add_argument(
        "--warehouse", default=None, metavar="PATH",
        help="scene warehouse database to audit out-of-core instead of a "
        "profile split or path list (see the `warehouse` subcommand)",
    )
    audit.add_argument(
        "--where", default=None, metavar="JSON",
        help="ScenePredicate JSON pruning the warehouse corpus on its "
        "metadata indexes, e.g. '{\"range\": {\"field\": \"n_tracks\", "
        "\"low\": 10}}' (needs --warehouse)",
    )
    audit.add_argument(
        "--batch", type=int, default=None,
        help="resident-scene budget for out-of-core resolution (scenes "
        "fetched and held per step; needs --warehouse)",
    )
    audit.add_argument(
        "--model", default=None,
        help="saved LearnedModel JSON to score with (otherwise the profile's "
        "training split is fitted on)",
    )
    audit.add_argument(
        "--features", choices=["default", "model_error"], default="default"
    )
    audit.add_argument(
        "--kind", choices=["tracks", "bundles", "observations"],
        default="tracks",
    )
    audit.add_argument("--top", type=int, default=None, help="keep top K items")
    audit.add_argument(
        "--backend", default="inline",
        help="execution backend: inline, threaded, sharded, session, "
        "or remote",
    )
    audit.add_argument(
        "--workers", nargs="+", default=None, metavar="N|HOST:PORT",
        help="sharded backend: one process count (--workers 4); remote "
        "backend: worker addresses (--workers host1:7500 host2:7500)",
    )
    audit.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (remote backend)",
    )
    audit.add_argument(
        "--wire", choices=["auto", "v1", "v2"], default=None,
        help="remote backend wire format: auto (negotiate per worker, "
        "the default), v1 (line-JSON), v2 (require binary frames + "
        "content-addressed scene shipping)",
    )
    audit.add_argument(
        "--jobs", type=int, default=None,
        help="worker threads (threaded backend)",
    )
    audit.add_argument(
        "--model-only", action="store_true",
        help="filter to components with model observations and no human "
        "labels (the missing-label audit)",
    )
    audit.add_argument(
        "--out", default=None,
        help="also write the AuditResult JSON to this path",
    )
    audit.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace of the run (stitched across remote "
        "workers) and write it to PATH as JSONL, one span per line",
    )

    rank = sub.add_parser(
        "rank", help="(deprecated: use `audit`) rank potential missing labels"
    )
    rank.add_argument("--profile", choices=sorted(_PROFILES), default="internal")
    rank.add_argument("--scene", type=int, default=0, help="validation scene index")
    rank.add_argument("--top", type=int, default=10)
    rank.add_argument("--train", type=int, default=None)
    rank.add_argument("--val", type=int, default=None)
    rank.add_argument(
        "--scalar", action="store_true",
        help="use the scalar reference pipeline instead of the columnar "
        "fast path (for verification)",
    )
    rank.add_argument(
        "--jobs", type=int, default=1,
        help="worker threads for multi-scene compilation (default 1)",
    )

    bench = sub.add_parser(
        "bench", help="A/B the scalar vs columnar compile+rank pipelines"
    )
    bench.add_argument(
        "--densities", type=int, nargs="+", default=[10, 25, 50, 100],
        help="objects per scene to sweep",
    )
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--out", default=None,
        help="also write the JSON report to this path",
    )

    serve = sub.add_parser(
        "serve",
        help="streaming serving loop: JSON requests on stdin, responses "
        "on stdout",
    )
    serve.add_argument(
        "--model", default=None,
        help="path to a saved LearnedModel JSON (persisted density grids "
        "are restored, skipping the warmup build); when omitted, fits on "
        "a synthetic profile's training split",
    )
    serve.add_argument(
        "--features", choices=["default", "model_error"], default="default",
        help="feature set the service compiles with",
    )
    serve.add_argument(
        "--profile", choices=sorted(_PROFILES), default="internal",
        help="synthetic profile to fit on when --model is absent",
    )
    serve.add_argument("--train", type=int, default=None)
    serve.add_argument(
        "--max-sessions", type=int, default=32,
        help="live scene sessions kept before LRU eviction",
    )
    serve.add_argument(
        "--max-standing", type=int, default=16,
        help="standing-audit subscriptions allowed per session (each is "
        "incrementally maintained on every edit; default 16)",
    )
    serve.add_argument(
        "--strict", action="store_true",
        help="reject version-less (v0) protocol requests with a structured "
        "unsupported_version error instead of the deprecation shim",
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the protocol over TCP instead of stdio (port 0 picks "
        "a free port; the bound address is announced on stderr as "
        "'listening on HOST:PORT'); this is the worker mode of the "
        "remote backend",
    )
    serve.add_argument(
        "--capacity", type=int, default=1,
        help="advertised audit capacity (partition weight in a worker "
        "pool; default 1)",
    )
    serve.add_argument(
        "--scene-cache", type=int, default=256,
        help="decoded scenes kept by content hash for the v2 "
        "content-addressed transport (bounded LRU; advertised in "
        "hello; default 256)",
    )
    serve.add_argument(
        "--metrics-addr", default=None, metavar="HOST:PORT",
        help="also serve the Prometheus text exposition of the process "
        "metrics registry over HTTP at this address (port 0 picks a "
        "free port, announced on stderr as 'metrics on HOST:PORT')",
    )
    serve.add_argument(
        "--warehouse", default=None, metavar="PATH",
        help="shared scene warehouse database: scene hashes that miss "
        "the in-memory cache are fetched from it locally, and hello "
        "advertises the capability so out-of-core coordinators send "
        "hashes with no scene bodies",
    )
    serve.add_argument(
        "--async", dest="async_gateway", action="store_true",
        help="serve --listen through the asyncio gateway (one event "
        "loop multiplexing all connections, admission control with "
        "typed `overloaded` load shedding, compile coalescing) "
        "instead of a thread per connection",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4,
        help="gateway worker threads executing requests (--async; "
        "default 4)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admitted requests allowed to queue for an executor slot "
        "before new arrivals are shed with the `overloaded` code "
        "(--async; default 64)",
    )
    serve.add_argument(
        "--client-budget", type=int, default=16,
        help="in-flight requests one connection may have before its "
        "next request is shed with `overloaded` (--async; default 16)",
    )

    wh = sub.add_parser(
        "warehouse",
        help="manage a persistent content-addressed scene corpus",
    )
    wh_sub = wh.add_subparsers(dest="warehouse_command", required=True)

    wh_ingest = wh_sub.add_parser(
        "ingest", help="pack + store scenes by content fingerprint"
    )
    wh_ingest.add_argument("--db", required=True, help="warehouse database path")
    wh_ingest.add_argument(
        "--paths", nargs="+", default=None,
        help="scene JSON files (Scene.save / `generate` output) to ingest",
    )
    wh_ingest.add_argument(
        "--profile", choices=sorted(_PROFILES), default=None,
        help="synthesize a profile and ingest its scenes instead of files",
    )
    wh_ingest.add_argument(
        "--split", choices=["train", "val", "all"], default="val",
        help="which profile split(s) to ingest (default val)",
    )
    wh_ingest.add_argument("--train", type=int, default=None)
    wh_ingest.add_argument("--val", type=int, default=None)
    wh_ingest.add_argument(
        "--tags", nargs="+", default=(),
        help="user tags attached to every ingested scene (queryable "
        "with the `tag` predicate)",
    )

    wh_query = wh_sub.add_parser(
        "query", help="prune the corpus on its metadata indexes"
    )
    wh_query.add_argument("--db", required=True, help="warehouse database path")
    wh_query.add_argument(
        "--where", default=None, metavar="JSON",
        help="ScenePredicate JSON (omit to list the whole corpus)",
    )
    wh_query.add_argument(
        "--count", action="store_true",
        help="print only the match count, not the fingerprint list",
    )

    wh_stats = wh_sub.add_parser("stats", help="corpus-level counters")
    wh_stats.add_argument("--db", required=True, help="warehouse database path")

    wh_gc = wh_sub.add_parser(
        "gc",
        help="drop compiled-columns sidecar rows for rotated models",
    )
    wh_gc.add_argument("--db", required=True, help="warehouse database path")
    wh_gc.add_argument(
        "--keep-model", nargs="+", required=True, metavar="FINGERPRINT",
        help="model fingerprints still in service; sidecar rows under "
        "any other fingerprint are deleted (scene blobs are never "
        "touched)",
    )

    return parser


def _cmd_generate(args) -> int:
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    dataset = build_dataset(
        _PROFILES[args.profile], n_train_scenes=args.train, n_val_scenes=args.val
    )
    for scene in dataset.train_scenes:
        scene.save(out_dir / f"{scene.scene_id}.labels.json")
    for ls in dataset.val_scenes:
        ls.world.to_dict()  # ensure serializable before writing anything
        ls.scene.save(out_dir / f"{ls.scene_id}.labels.json")
        ls.ledger.save(out_dir / f"{ls.scene_id}.errors.json")
        from repro.datagen import SceneCollection

        SceneCollection(name=ls.scene_id, scenes=[ls.world]).save(
            out_dir / f"{ls.scene_id}.world.json"
        )
    print(
        f"wrote {len(dataset.train_scenes)} training + "
        f"{len(dataset.val_scenes)} validation scenes to {out_dir}"
    )
    return 0


def _cmd_experiment(args) -> int:
    from repro.eval import experiments as ex
    from repro.eval.harness import run_all

    if args.name == "all":
        print(run_all(n_train_scenes=args.train, n_val_scenes=args.val).to_text())
        return 0
    if args.name == "table3":
        result = ex.table3(n_train_scenes=args.train, n_val_scenes=args.val)
    elif args.name == "recall":
        result = ex.recall_experiment()
    elif args.name == "scene_coverage":
        result = ex.scene_coverage(n_val_scenes=args.val)
    elif args.name == "missing_observation":
        result = ex.missing_observation_experiment()
    elif args.name == "model_errors":
        result = ex.model_errors_experiment()
    elif args.name == "runtime":
        result = ex.runtime_experiment()
    else:  # figures
        for study in ex.figure_case_studies():
            print(study.to_text())
            print()
        return 0
    print(result.to_text())
    return 0


def _cmd_audit(args) -> int:
    """Build (or load) an AuditSpec, execute it, print the result JSON."""
    import json

    from repro.api import (
        Audit,
        AuditError,
        AuditSpec,
        FilterSpec,
        SceneSource,
        UnknownBackendError,
    )
    from repro.api.protocol import ProtocolError
    from repro.api.spec import SpecValidationError
    from repro.core.scoring import UnknownRankKindError

    declarative_flags = (
        args.profile is not None or args.paths is not None
        or args.model is not None or args.scene is not None
        or args.kind != "tracks" or args.top is not None
        or args.backend != "inline" or args.features != "default"
        or args.split != "val" or args.workers is not None
        or args.jobs is not None or args.model_only
        or args.timeout is not None or args.wire is not None
        or args.warehouse is not None or args.where is not None
        or args.batch is not None
    )
    try:
        if args.spec is not None:
            if declarative_flags:
                raise SpecValidationError(
                    "--spec carries the full declaration; combining it with "
                    "other audit flags (--profile/--paths/--warehouse/"
                    "--scene/--model/--kind/--top/--backend/...) is "
                    "ambiguous — edit the spec file instead"
                )
            spec = AuditSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
        else:
            if (
                args.profile is None
                and args.paths is None
                and args.warehouse is None
            ):
                raise SpecValidationError(
                    "audit needs a scene source: --profile, --paths, "
                    "--warehouse, or --spec"
                )
            predicate = None
            if args.where is not None:
                from repro.warehouse import PredicateError, ScenePredicate

                try:
                    predicate = ScenePredicate.from_dict(
                        json.loads(args.where)
                    )
                except json.JSONDecodeError as exc:
                    raise SpecValidationError(
                        f"--where is not valid JSON: {exc}"
                    ) from None
                except PredicateError as exc:
                    raise SpecValidationError(
                        f"--where is not a valid predicate: {exc}"
                    ) from None
            backend_options = {}
            if args.workers is not None:
                if args.backend == "sharded":
                    if len(args.workers) != 1 or not args.workers[0].isdigit():
                        raise SpecValidationError(
                            "--workers for the sharded backend takes one "
                            f"process count, got {args.workers!r}"
                        )
                    backend_options["n_workers"] = int(args.workers[0])
                elif args.backend == "remote":
                    from repro.api.client import parse_address

                    for worker in args.workers:
                        try:
                            parse_address(worker)
                        except ValueError:
                            raise SpecValidationError(
                                "--workers for the remote backend takes "
                                f"HOST:PORT addresses, got {worker!r}"
                            ) from None
                    backend_options["workers"] = list(args.workers)
                else:
                    raise SpecValidationError(
                        "--workers applies to the sharded (process count) "
                        "or remote (worker addresses) backend "
                        f"(got --backend {args.backend})"
                    )
            elif args.backend == "remote":
                raise SpecValidationError(
                    "the remote backend needs --workers HOST:PORT [...]"
                )
            if args.timeout is not None:
                if args.backend != "remote":
                    raise SpecValidationError(
                        "--timeout applies to the remote backend "
                        f"(got --backend {args.backend})"
                    )
                backend_options["timeout"] = args.timeout
            if args.wire is not None:
                if args.backend != "remote":
                    raise SpecValidationError(
                        "--wire applies to the remote backend "
                        f"(got --backend {args.backend})"
                    )
                backend_options["wire"] = args.wire
            if args.jobs is not None:
                if args.backend != "threaded":
                    raise SpecValidationError(
                        "--jobs applies to the threaded backend "
                        f"(got --backend {args.backend})"
                    )
                backend_options["n_jobs"] = args.jobs
            spec = AuditSpec(
                kind=args.kind,
                top_k=args.top,
                filters=(
                    FilterSpec(has_model=True, has_human=False)
                    if args.model_only
                    else None
                ),
                features=args.features,
                model_path=args.model,
                scenes=SceneSource(
                    profile=args.profile,
                    split=args.split,
                    n_train=args.train,
                    n_val=args.val,
                    indices=tuple(args.scene) if args.scene else None,
                    paths=tuple(args.paths) if args.paths else None,
                    warehouse=args.warehouse,
                    predicate=predicate,
                    batch=args.batch,
                ),
                backend=args.backend,
                backend_options=backend_options,
            )
        result = Audit(spec).run(trace=True if args.trace else None)
    except (
        SpecValidationError,
        UnknownRankKindError,
        UnknownBackendError,
        AuditError,
    ) as exc:
        print(f"invalid audit spec: {exc}", file=sys.stderr)
        return 2
    except ProtocolError as exc:
        # The distributed failure modes (worker_unavailable,
        # model_mismatch, request_timeout, ...) — the declaration was
        # fine, the execution failed.
        print(f"audit failed: {exc}", file=sys.stderr)
        return 3
    text = result.to_json(indent=2)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.trace:
        n_spans = result.dump_trace(args.trace)
        print(f"wrote {n_spans} spans to {args.trace}", file=sys.stderr)
    return 0


def _cmd_rank(args) -> int:
    from repro.api import Audit, AuditSpec, FilterSpec
    from repro.core import MissingTrackFinder

    warnings.warn(
        "`repro.cli rank` is deprecated; use `repro.cli audit` "
        "(e.g. audit --profile internal --scene 0 --model-only)",
        DeprecationWarning,
        stacklevel=2,
    )
    dataset = build_dataset(
        _PROFILES[args.profile], n_train_scenes=args.train, n_val_scenes=args.val
    )
    if not 0 <= args.scene < len(dataset.val_scenes):
        print(
            f"scene index {args.scene} out of range "
            f"(dataset has {len(dataset.val_scenes)} validation scenes)",
            file=sys.stderr,
        )
        return 2
    labeled = dataset.val_scenes[args.scene]
    # Thin client of the audit API: the finder supplies the fitted
    # engine (with its missing-track AOFs), the spec declares the query.
    finder = MissingTrackFinder(
        vectorized=not args.scalar, n_jobs=args.jobs
    ).fit(dataset.train_scenes)
    spec = AuditSpec(
        kind="tracks",
        top_k=args.top,
        filters=FilterSpec(has_model=True, has_human=False),
    )
    ranked = Audit(spec, fixy=finder.fixy).run(scenes=labeled.scene).items
    auditor = labeled.auditor()

    print(f"Top {args.top} potential missing labels in {labeled.scene_id}:")
    for position, scored in enumerate(ranked, start=1):
        decision = auditor.audit_missing_track(scored.item)
        mark = "✓" if decision.is_error else "✗"
        print(
            f"  {mark} #{position:<2d} score {scored.score:+.3f}  "
            f"{scored.item.majority_class():<10s} "
            f"{scored.item.n_observations:>3d} obs  ({decision.reason})"
        )
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.eval.perf import ab_compile_rank, render_report

    report = ab_compile_rank(
        densities=tuple(args.densities), repeats=args.repeats
    )
    print(render_report(report))
    if args.out:
        import time

        Path(args.out).write_text(
            json.dumps({"generated_at": time.time(), "ab": report}, indent=2),
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    return 0


def _cmd_warehouse(args) -> int:
    """Corpus management: ingest / query / stats on a SceneWarehouse."""
    import json

    from repro.warehouse import (
        PredicateError,
        ScenePredicate,
        SceneWarehouse,
        WarehouseError,
    )

    if args.warehouse_command == "ingest":
        if (args.paths is None) == (args.profile is None):
            print(
                "warehouse ingest needs exactly one of --paths or --profile",
                file=sys.stderr,
            )
            return 2
        tags = tuple(args.tags)
        with SceneWarehouse(args.db) as warehouse:
            if args.paths is not None:
                from repro.core.model import Scene

                fingerprints = [
                    warehouse.ingest(Scene.load(path), tags=tags)
                    for path in args.paths
                ]
            else:
                dataset = build_dataset(
                    _PROFILES[args.profile],
                    n_train_scenes=args.train,
                    n_val_scenes=args.val,
                )
                scenes = []
                if args.split in ("train", "all"):
                    scenes += list(dataset.train_scenes)
                if args.split in ("val", "all"):
                    scenes += [ls.scene for ls in dataset.val_scenes]
                fingerprints = [
                    warehouse.ingest(scene, tags=tags) for scene in scenes
                ]
            stats = warehouse.stats()
        for fingerprint in fingerprints:
            print(fingerprint)
        print(
            f"ingested {len(fingerprints)} scenes into {args.db} "
            f"(corpus now {stats['scenes']} scenes, "
            f"{stats['blob_bytes']} blob bytes)",
            file=sys.stderr,
        )
        return 0

    try:
        warehouse = SceneWarehouse(args.db, create=False)
    except WarehouseError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    with warehouse:
        if args.warehouse_command == "stats":
            print(json.dumps(warehouse.stats(), indent=2))
            return 0
        if args.warehouse_command == "gc":
            report = warehouse.gc_compiled(args.keep_model)
            print(json.dumps(report, indent=2))
            print(
                f"dropped {report['rows_dropped']} compiled rows "
                f"({report['bytes_reclaimed']} bytes) across "
                f"{len(report['dropped_models'])} rotated models; "
                f"{report['rows_kept']} rows kept",
                file=sys.stderr,
            )
            return 0
        # query
        predicate = None
        if args.where is not None:
            try:
                predicate = ScenePredicate.from_dict(json.loads(args.where))
            except json.JSONDecodeError as exc:
                print(f"--where is not valid JSON: {exc}", file=sys.stderr)
                return 2
            except PredicateError as exc:
                print(
                    f"--where is not a valid predicate: {exc}", file=sys.stderr
                )
                return 2
        if args.count:
            print(warehouse.count(predicate))
            return 0
        fingerprints = warehouse.query(predicate)
        for fingerprint in fingerprints:
            print(fingerprint)
        print(
            f"{len(fingerprints)} of {len(warehouse)} scenes match",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args, stdin=None, stdout=None) -> int:
    """Run the streaming service over line-delimited JSON stdio.

    ``stdin``/``stdout`` are injectable for tests; stdout carries only
    protocol responses (the ready banner goes to stderr).
    """
    from repro.core import Fixy, LearnedModel, default_features, model_error_features
    from repro.serving import StreamingService

    listen_address = None
    if args.listen is not None:
        from repro.api.client import parse_address

        try:
            listen_address = parse_address(args.listen)
        except ValueError as exc:
            # Fail before the (slow) model load / fit.
            print(f"invalid --listen address: {exc}", file=sys.stderr)
            return 2
    if args.async_gateway and listen_address is None:
        print(
            "--async needs --listen (the gateway is a TCP front)",
            file=sys.stderr,
        )
        return 2
    metrics_address = None
    if args.metrics_addr is not None:
        from repro.api.client import parse_address

        try:
            metrics_address = parse_address(args.metrics_addr)
        except ValueError as exc:
            print(f"invalid --metrics-addr address: {exc}", file=sys.stderr)
            return 2

    features = (
        default_features() if args.features == "default" else model_error_features()
    )
    fixy = Fixy(features)
    if args.model:
        fixy.learned = LearnedModel.load(args.model)
        if fixy.fast_density:
            fixy.learned.enable_fast_eval()
        source = f"model {args.model}"
    else:
        dataset = build_dataset(_PROFILES[args.profile], n_train_scenes=args.train)
        fixy.fit(dataset.train_scenes)
        source = f"fit on {args.profile} ({len(dataset.train_scenes)} scenes)"

    service = StreamingService(
        fixy,
        max_sessions=args.max_sessions,
        accept_legacy=not args.strict,
        capacity=args.capacity,
        scene_cache=args.scene_cache,
        max_standing=args.max_standing,
        warehouse=args.warehouse,
    )
    from repro.api.protocol import PROTOCOL_VERSION

    print(
        f"serving ({source}); protocol v{PROTOCOL_VERSION}"
        f"{' (strict)' if args.strict else ''}; "
        "ops: open/edit/rank/audit/subscribe/unsubscribe/standing/"
        "close/stats/hello/health/metrics; "
        "one JSON request per line (or v2 binary frames over --listen)",
        file=sys.stderr,
    )
    metrics_server = None
    if metrics_address is not None:
        from repro.obs.http import serve_metrics

        m_host, m_port = metrics_address
        try:
            metrics_server = serve_metrics(host=m_host, port=m_port)
        except OSError as exc:
            print(
                f"cannot serve metrics on {args.metrics_addr}: {exc}",
                file=sys.stderr,
            )
            return 2
        m_host, m_port = metrics_server.address
        print(f"metrics on {m_host}:{m_port}", file=sys.stderr, flush=True)
    try:
        if listen_address is not None and args.async_gateway:
            import asyncio

            from repro.serving.gateway import AsyncGateway, run_gateway

            host, port = listen_address
            gateway = AsyncGateway(
                service,
                host=host,
                port=port,
                max_inflight=args.max_inflight,
                max_queue=args.max_queue,
                client_budget=args.client_budget,
            )

            def _announce(address: str) -> None:
                print(
                    f"gateway listening on {address} "
                    f"(max_inflight={args.max_inflight} "
                    f"max_queue={args.max_queue} "
                    f"client_budget={args.client_budget})",
                    file=sys.stderr,
                    flush=True,
                )

            try:
                asyncio.run(run_gateway(gateway, announce=_announce))
            except OSError as exc:  # port busy, address not bindable, ...
                print(
                    f"cannot listen on {args.listen}: {exc}", file=sys.stderr
                )
                return 2
            except KeyboardInterrupt:
                pass
            print(
                f"served {service.requests_handled} requests "
                f"({gateway.requests_shed} shed)",
                file=sys.stderr,
            )
            return 0
        if listen_address is not None:
            from repro.serving.tcp import serve_tcp

            host, port = listen_address
            try:
                server = serve_tcp(service, host=host, port=port)
            except OSError as exc:  # port busy, address not bindable, ...
                print(
                    f"cannot listen on {args.listen}: {exc}", file=sys.stderr
                )
                return 2
            print(
                f"listening on {server.address}", file=sys.stderr, flush=True
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
            print(
                f"served {service.requests_handled} requests", file=sys.stderr
            )
            return 0
        handled = service.serve(stdin or sys.stdin, stdout or sys.stdout)
        print(f"served {handled} requests", file=sys.stderr)
        return 0
    finally:
        if metrics_server is not None:
            metrics_server.stop()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "warehouse":
        return _cmd_warehouse(args)
    return _cmd_rank(args)


if __name__ == "__main__":
    raise SystemExit(main())
