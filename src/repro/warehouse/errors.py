"""Typed failure vocabulary for the scene warehouse.

Mirrors the serving protocol's philosophy (:mod:`repro.api.protocol`):
callers branch on *types*, not message strings. Every warehouse error
derives from :class:`WarehouseError`, so ``except WarehouseError``
catches the whole family without swallowing unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "WarehouseError",
    "WarehouseCorruptionError",
    "UnknownFingerprintError",
    "PredicateError",
]


class WarehouseError(RuntimeError):
    """Base class for every scene-warehouse failure."""


class WarehouseCorruptionError(WarehouseError):
    """Stored bytes failed an integrity check on read.

    Raised when a scene blob re-hashes to a different fingerprint than
    its primary key (bit rot, a partial write, or an external edit),
    when a blob no longer unpacks, or when a compiled-columns sidecar
    fails its checksum. The row is *not* deleted — the operator decides
    whether to re-ingest or investigate.
    """

    def __init__(self, fingerprint: str, reason: str):
        self.fingerprint = fingerprint
        self.reason = reason
        super().__init__(
            f"warehouse entry {fingerprint[:12]}… is corrupt: {reason}"
        )


class UnknownFingerprintError(WarehouseError, KeyError):
    """A fingerprint the warehouse has never ingested.

    Also a :class:`KeyError` so mapping-style callers
    (``except KeyError``) behave as expected.
    """

    def __init__(self, fingerprint: str):
        self.fingerprint = fingerprint
        # Bypass KeyError's repr-the-single-arg formatting.
        RuntimeError.__init__(
            self, f"unknown scene fingerprint {fingerprint[:12]}…"
        )

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return RuntimeError.__str__(self)


class PredicateError(WarehouseError, ValueError):
    """A scene predicate that does not validate (unknown field, bad
    bounds, malformed JSON shape)."""
