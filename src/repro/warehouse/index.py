"""ScenePredicate: the warehouse's indexed pruning algebra.

A predicate describes *which* scenes an audit wants without touching a
single blob: it compiles to a SQL ``WHERE`` clause over the warehouse's
secondary metadata indexes (:meth:`ScenePredicate.to_sql`), so pruning
is an index scan returning a fingerprint list. The same predicate also
evaluates in pure Python against a metadata dict
(:meth:`ScenePredicate.matches`) — which is how the property suite
asserts the indexed plan never drops a matching scene (SQL result ==
full scan, for randomized corpora and predicates).

The algebra is deliberately small and closed under JSON:

====== ====================================================== =========
op     meaning                                                JSON
====== ====================================================== =========
eq     ``field == value``                                     ``{"eq": {"field": f, "value": v}}``
range  ``low <= field <= high`` (inclusive; either bound      ``{"range": {"field": f, "low": l, "high": h}}``
       may be omitted)
tag    scene carries the user tag                             ``{"tag": "nightly"}``
and    every child matches                                    ``{"and": [p, ...]}``
or     any child matches                                      ``{"or": [p, ...]}``
====== ====================================================== =========

Fields are whitelisted (:data:`INDEXED_FIELDS`) — a predicate can only
name columns the warehouse actually indexes, so every compiled query is
index-supported by construction (the access-pattern discipline of the
free-access-pattern literature applied to scene metadata). Unknown
fields raise :class:`~repro.warehouse.errors.PredicateError` at
construction, not at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.warehouse.errors import PredicateError

__all__ = ["INDEXED_FIELDS", "ScenePredicate"]

#: Metadata columns a predicate may name, with the Python type stored.
#: Each has a secondary index in the warehouse schema
#: (:class:`~repro.warehouse.store.SceneWarehouse`).
INDEXED_FIELDS: dict[str, type] = {
    "scene_id": str,
    "n_tracks": int,
    "n_observations": int,
    "n_frames": int,
    "duration_s": float,
    "dt": float,
    "ingested_at": float,
}

_OPS = ("eq", "range", "tag", "and", "or")


def _check_scalar(op: str, fname: str, value) -> None:
    if fname not in INDEXED_FIELDS:
        raise PredicateError(
            f"{op} predicate names unindexed field {fname!r}; indexed "
            f"fields are {sorted(INDEXED_FIELDS)}"
        )
    expected = INDEXED_FIELDS[fname]
    if expected is str:
        if not isinstance(value, str):
            raise PredicateError(
                f"{op} on {fname!r} needs a string, got {value!r}"
            )
    elif not isinstance(value, (int, float)) or isinstance(value, bool):
        raise PredicateError(
            f"{op} on {fname!r} needs a number, got {value!r}"
        )


@dataclass(frozen=True)
class ScenePredicate:
    """One node of the predicate algebra (use the classmethod builders).

    Instances are immutable value objects: hashable, comparable, and
    JSON-round-trippable (``to_dict``/``from_dict``), so a predicate
    embeds in a :class:`~repro.api.spec.SceneSource` and participates
    in ``spec_hash()`` like any other declarative field.
    """

    op: str
    field: str | None = None
    value: object = None
    low: float | None = None
    high: float | None = None
    children: tuple["ScenePredicate", ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "children", tuple(self.children))
        if self.op not in _OPS:
            raise PredicateError(
                f"unknown predicate op {self.op!r}; expected one of {_OPS}"
            )
        if self.op == "eq":
            _check_scalar("eq", self.field, self.value)
        elif self.op == "range":
            if self.field not in INDEXED_FIELDS:
                raise PredicateError(
                    f"range predicate names unindexed field {self.field!r}; "
                    f"indexed fields are {sorted(INDEXED_FIELDS)}"
                )
            if INDEXED_FIELDS[self.field] is str:
                raise PredicateError(
                    f"range does not apply to string field {self.field!r}"
                )
            if self.low is None and self.high is None:
                raise PredicateError(
                    f"range on {self.field!r} needs at least one of low=/high="
                )
            for name, bound in (("low", self.low), ("high", self.high)):
                if bound is not None and (
                    not isinstance(bound, (int, float))
                    or isinstance(bound, bool)
                ):
                    raise PredicateError(
                        f"range {name} must be a number, got {bound!r}"
                    )
            if (
                self.low is not None
                and self.high is not None
                and self.low > self.high
            ):
                raise PredicateError(
                    f"empty range on {self.field!r}: low {self.low!r} > "
                    f"high {self.high!r}"
                )
        elif self.op == "tag":
            if not isinstance(self.value, str) or not self.value:
                raise PredicateError(
                    f"tag predicate needs a non-empty tag name, got "
                    f"{self.value!r}"
                )
        else:  # and / or
            if not self.children:
                raise PredicateError(
                    f"{self.op} predicate needs at least one child"
                )
            for child in self.children:
                if not isinstance(child, ScenePredicate):
                    raise PredicateError(
                        f"{self.op} children must be ScenePredicates, got "
                        f"{type(child).__name__}"
                    )

    # -- builders ------------------------------------------------------
    @classmethod
    def eq(cls, field: str, value) -> "ScenePredicate":
        return cls(op="eq", field=field, value=value)

    @classmethod
    def range(
        cls, field: str, low: float | None = None, high: float | None = None
    ) -> "ScenePredicate":
        return cls(op="range", field=field, low=low, high=high)

    @classmethod
    def tag(cls, name: str) -> "ScenePredicate":
        return cls(op="tag", value=name)

    @classmethod
    def all_of(cls, *children: "ScenePredicate") -> "ScenePredicate":
        return cls(op="and", children=tuple(children))

    @classmethod
    def any_of(cls, *children: "ScenePredicate") -> "ScenePredicate":
        return cls(op="or", children=tuple(children))

    # -- SQL compilation ----------------------------------------------
    def to_sql(self) -> tuple[str, list]:
        """``(parenthesized WHERE fragment, bind parameters)``.

        Column references are unqualified (the warehouse queries the
        ``scenes`` table directly); tags compile to an ``EXISTS``
        subquery against the ``(tag, fingerprint)`` index. Every
        identifier comes from :data:`INDEXED_FIELDS`, so the fragment
        is injection-free by construction.
        """
        if self.op == "eq":
            return f"({self.field} = ?)", [self.value]
        if self.op == "range":
            parts, params = [], []
            if self.low is not None:
                parts.append(f"{self.field} >= ?")
                params.append(self.low)
            if self.high is not None:
                parts.append(f"{self.field} <= ?")
                params.append(self.high)
            return "(" + " AND ".join(parts) + ")", params
        if self.op == "tag":
            return (
                "(EXISTS (SELECT 1 FROM tags WHERE "
                "tags.fingerprint = scenes.fingerprint AND tags.tag = ?))",
                [self.value],
            )
        joiner = " AND " if self.op == "and" else " OR "
        fragments, params = [], []
        for child in self.children:
            fragment, child_params = child.to_sql()
            fragments.append(fragment)
            params.extend(child_params)
        return "(" + joiner.join(fragments) + ")", params

    # -- pure-Python evaluation (the full-scan reference) -------------
    def matches(self, meta: Mapping, tags: set[str] | frozenset[str]) -> bool:
        """Evaluate against one scene's metadata dict + tag set.

        The executable specification :meth:`to_sql` is property-tested
        against: for any corpus, the indexed query must return exactly
        the fingerprints this returns ``True`` for.
        """
        if self.op == "eq":
            return meta[self.field] == self.value
        if self.op == "range":
            value = meta[self.field]
            if self.low is not None and value < self.low:
                return False
            if self.high is not None and value > self.high:
                return False
            return True
        if self.op == "tag":
            return self.value in tags
        if self.op == "and":
            return all(c.matches(meta, tags) for c in self.children)
        return any(c.matches(meta, tags) for c in self.children)

    # -- JSON round-trip ----------------------------------------------
    def to_dict(self) -> dict:
        if self.op == "eq":
            return {"eq": {"field": self.field, "value": self.value}}
        if self.op == "range":
            body: dict = {"field": self.field}
            if self.low is not None:
                body["low"] = self.low
            if self.high is not None:
                body["high"] = self.high
            return {"range": body}
        if self.op == "tag":
            return {"tag": self.value}
        return {self.op: [c.to_dict() for c in self.children]}

    @staticmethod
    def from_dict(data: Mapping) -> "ScenePredicate":
        if not isinstance(data, Mapping) or len(data) != 1:
            raise PredicateError(
                "a predicate dict has exactly one key (eq/range/tag/and/or), "
                f"got {data!r}"
            )
        (op, body), = data.items()
        if op == "eq":
            if not isinstance(body, Mapping) or set(body) != {"field", "value"}:
                raise PredicateError(
                    f"eq body needs exactly field/value, got {body!r}"
                )
            return ScenePredicate.eq(body["field"], body["value"])
        if op == "range":
            if not isinstance(body, Mapping) or not (
                {"field"} <= set(body) <= {"field", "low", "high"}
            ):
                raise PredicateError(
                    f"range body needs field plus low and/or high, got {body!r}"
                )
            return ScenePredicate.range(
                body["field"], low=body.get("low"), high=body.get("high")
            )
        if op == "tag":
            return ScenePredicate.tag(body)
        if op in ("and", "or"):
            if not isinstance(body, (list, tuple)):
                raise PredicateError(
                    f"{op} body must be a list of predicates, got {body!r}"
                )
            children = tuple(ScenePredicate.from_dict(c) for c in body)
            return ScenePredicate(op=op, children=children)
        raise PredicateError(
            f"unknown predicate op {op!r}; expected one of {_OPS}"
        )
