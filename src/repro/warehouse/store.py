"""SceneWarehouse: a durable, content-addressed scene + compiled store.

The disk half of the content-addressed transport PR 5 put on the wire:
``scene_fingerprint → packed scene blob`` (the exact
:func:`repro.api.frames.pack_scene` bytes, bit-identical round-trip)
in a single SQLite file — stdlib :mod:`sqlite3`, no new dependencies.
Three tables:

- ``scenes``: the blob plus the metadata columns the predicate algebra
  (:mod:`repro.warehouse.index`) prunes on, each secondarily indexed —
  a predicate resolves to a fingerprint list without touching a blob;
- ``tags``: user tags, ``(fingerprint, tag)`` with a ``(tag, …)``
  index for the ``tag`` predicate;
- ``compiled``: the optional compiled-columns sidecar, keyed by
  ``(scene_fingerprint, model_fingerprint)``. A warm audit restores the
  factor arrays (:func:`restore_compiled`) instead of calling
  ``compile_scene`` — the expensive batched density evaluations are
  skipped entirely; only the cheap :class:`ObservationTable` array
  extraction reruns against the unpacked scene. Keying by model
  fingerprint *is* the invalidation rule: refit the model and every
  sidecar row written under the old fingerprint simply stops matching.

Integrity is checked on every read: scene blobs are re-hashed against
their primary key and sidecar payloads against a stored checksum;
mismatches raise :class:`~repro.warehouse.errors.WarehouseCorruptionError`
rather than silently scoring garbage. Ingest is idempotent
(``INSERT OR REPLACE`` keyed by content hash — concurrent ingests of
the same fingerprint race benignly, last writer wins the metadata and
tags), and canonical scene order is *fingerprint order*: content-derived,
so re-ingesting a corpus never reorders an audit.

Sidecar-restored compiled scenes are scoring-complete (``Scorer`` ranks
them byte-identically to a fresh compile) but do not materialize the
lazy factor-graph view — ``compiled.graph`` needs the live feature
matrix; re-compile with ``Fixy.compile(scene)`` for that.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import struct
import threading
import time
from typing import Iterable, Iterator

import numpy as np

from repro.api import frames
from repro.obs import metrics as obs_metrics
from repro.warehouse.errors import (
    UnknownFingerprintError,
    WarehouseCorruptionError,
    WarehouseError,
)
from repro.warehouse.index import INDEXED_FIELDS, ScenePredicate

__all__ = [
    "SCHEMA_VERSION",
    "SIDECAR_VERSION",
    "DEFAULT_BATCH",
    "SceneWarehouse",
    "pack_compiled",
    "restore_compiled",
    "scene_metadata",
    "warehouse_scorer",
]

#: Version of the on-disk schema (stored in ``warehouse_meta``).
SCHEMA_VERSION = 1

#: Version of the compiled-columns sidecar payload format.
SIDECAR_VERSION = 1

#: Default resident-batch budget for out-of-core resolution — the
#: number of decoded scenes an audit keeps live at once when a
#: :class:`~repro.api.spec.SceneSource` does not pin ``batch=``.
DEFAULT_BATCH = 32

# Warehouse metrics (names are API — docs/API.md, "Observability").
_INGESTS = obs_metrics.counter(
    "repro_warehouse_ingest_total", "Scenes ingested (including re-ingests)"
)
_INGEST_BYTES = obs_metrics.counter(
    "repro_warehouse_ingest_bytes_total", "Packed scene bytes ingested"
)
_FETCHES = obs_metrics.counter(
    "repro_warehouse_fetch_total", "Scene blobs fetched (and verified)"
)
_FETCH_BYTES = obs_metrics.counter(
    "repro_warehouse_fetch_bytes_total", "Packed scene bytes fetched"
)
_PRUNED = obs_metrics.counter(
    "repro_warehouse_pruned_total",
    "Scenes excluded by indexed predicate queries (corpus - matches)",
)
_COMPILED_HITS = obs_metrics.counter(
    "repro_warehouse_compiled_hits_total",
    "Warm audits served from the compiled-columns sidecar",
)
_COMPILED_MISSES = obs_metrics.counter(
    "repro_warehouse_compiled_misses_total",
    "Sidecar lookups that fell back to a full compile",
)
_CORRUPTIONS = obs_metrics.counter(
    "repro_warehouse_corruption_total",
    "Integrity-check failures on read (blob re-hash or sidecar checksum)",
)
_GC_ROWS = obs_metrics.counter(
    "repro_warehouse_gc_rows_total",
    "Compiled sidecar rows dropped by gc for rotated model fingerprints",
)
_GC_BYTES = obs_metrics.counter(
    "repro_warehouse_gc_bytes_total",
    "Compiled sidecar payload bytes reclaimed by gc",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS warehouse_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS scenes (
    fingerprint    TEXT PRIMARY KEY,
    blob           BLOB NOT NULL,
    scene_id       TEXT NOT NULL,
    n_tracks       INTEGER NOT NULL,
    n_observations INTEGER NOT NULL,
    n_frames       INTEGER NOT NULL,
    duration_s     REAL NOT NULL,
    dt             REAL NOT NULL,
    ingested_at    REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS scenes_by_scene_id ON scenes (scene_id);
CREATE INDEX IF NOT EXISTS scenes_by_n_tracks ON scenes (n_tracks);
CREATE INDEX IF NOT EXISTS scenes_by_n_observations ON scenes (n_observations);
CREATE INDEX IF NOT EXISTS scenes_by_n_frames ON scenes (n_frames);
CREATE INDEX IF NOT EXISTS scenes_by_duration ON scenes (duration_s);
CREATE INDEX IF NOT EXISTS scenes_by_dt ON scenes (dt);
CREATE INDEX IF NOT EXISTS scenes_by_ingested_at ON scenes (ingested_at);
CREATE TABLE IF NOT EXISTS tags (
    fingerprint TEXT NOT NULL,
    tag         TEXT NOT NULL,
    PRIMARY KEY (fingerprint, tag)
);
CREATE INDEX IF NOT EXISTS tags_by_tag ON tags (tag, fingerprint);
CREATE TABLE IF NOT EXISTS compiled (
    fingerprint       TEXT NOT NULL,
    model_fingerprint TEXT NOT NULL,
    payload           BLOB NOT NULL,
    checksum          TEXT NOT NULL,
    created_at        REAL NOT NULL,
    PRIMARY KEY (fingerprint, model_fingerprint)
);
"""


def scene_metadata(scene) -> dict:
    """The indexed metadata row derived from one scene.

    ``n_frames`` is the inclusive frame span (max − min + 1) across the
    scene's bundles and ``duration_s`` that span times ``scene.dt`` —
    the time-range index a predicate can bound without decoding a blob.
    """
    n_obs = 0
    lo = hi = None
    for track in scene.tracks:
        for bundle in track.bundles:
            n_obs += len(bundle.observations)
            frame = bundle.frame
            lo = frame if lo is None or frame < lo else lo
            hi = frame if hi is None or frame > hi else hi
    n_frames = 0 if lo is None else int(hi - lo + 1)
    return {
        "scene_id": scene.scene_id,
        "n_tracks": len(scene.tracks),
        "n_observations": n_obs,
        "n_frames": n_frames,
        "duration_s": n_frames * float(scene.dt),
        "dt": float(scene.dt),
    }


# ---------------------------------------------------------------------------
# Compiled-columns sidecar payload
# ---------------------------------------------------------------------------
_SIDECAR_ARRAYS = (
    ("factor_feature", "<i8"),
    ("factor_item", "<i8"),
    ("member_start", "<i8"),
    ("member_stop", "<i8"),
    ("potentials", "<f8"),
)


class _SidecarMatrix:
    """Placeholder for the feature matrix a sidecar does not persist.

    Ranking never touches it; the lazy graph/factor views do, and get a
    typed error pointing at the real compile path instead of an
    AttributeError deep inside materialization.
    """

    __slots__ = ()

    def __getattr__(self, name):
        raise WarehouseError(
            "sidecar-restored compiled scenes support scoring/ranking only; "
            "re-compile with Fixy.compile(scene) for the factor-graph view"
        )


def pack_compiled(columns) -> bytes:
    """Serialize a :class:`~repro.core.compile.CompiledColumns` payload.

    Layout mirrors :func:`repro.api.frames.pack_scene`: a u32-prefixed
    JSON header (feature names, track order + factor slices, override
    shapes) followed by the factor arrays as little-endian i8/f8 —
    exactly what :class:`~repro.core.scoring.Scorer` consumes, nothing
    the unpacked scene can rebuild for free.
    """
    overrides = sorted(
        (int(i), np.ascontiguousarray(rows, dtype="<i8"))
        for i, rows in columns.member_overrides.items()
    )
    header = {
        "version": SIDECAR_VERSION,
        "features": [f.name for f in columns.features],
        "n_factors": int(columns.n_factors),
        "track_order": list(columns.track_order),
        "track_factor_slices": {
            tid: [int(start), int(stop)]
            for tid, (start, stop) in columns.track_factor_slices.items()
        },
        "track_slices_cover_members": bool(columns.track_slices_cover_members),
        "overrides": [[i, int(rows.size)] for i, rows in overrides],
    }
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [struct.pack("<I", len(head)), head]
    for name, dtype in _SIDECAR_ARRAYS:
        parts.append(
            np.ascontiguousarray(getattr(columns, name), dtype=dtype).tobytes()
        )
    for _, rows in overrides:
        parts.append(rows.tobytes())
    return b"".join(parts)


def restore_compiled(payload: bytes, scene, features, fingerprint: str = "?"):
    """Rebuild a rank-ready compiled scene from a sidecar payload.

    ``features`` is the live engine's feature list; stored names resolve
    against it by name. Returns ``None`` when they don't (the engine's
    feature set changed without a model refit — treat as a cache miss),
    raises :class:`WarehouseCorruptionError` when the payload itself is
    malformed or inconsistent with the scene.
    """
    from repro.core.columnar import ObservationTable
    from repro.core.compile import CompiledColumns, CompiledScene
    from repro.core.features import FeatureContext

    def corrupt(reason: str) -> WarehouseCorruptionError:
        _CORRUPTIONS.inc()
        return WarehouseCorruptionError(fingerprint, reason)

    try:
        (head_len,) = struct.unpack_from("<I", payload, 0)
        header = json.loads(payload[4 : 4 + head_len].decode("utf-8"))
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise corrupt(f"sidecar header does not parse ({exc})") from None
    if header.get("version") != SIDECAR_VERSION:
        return None  # a future format, not corruption: recompile
    by_name = {f.name: f for f in features}
    names = header["features"]
    if any(name not in by_name for name in names):
        return None  # engine feature set changed: recompile
    n = int(header["n_factors"])
    offset = 4 + head_len
    arrays = {}
    for name, dtype in _SIDECAR_ARRAYS:
        width = np.dtype(dtype).itemsize
        end = offset + n * width
        if end > len(payload):
            raise corrupt("sidecar payload truncated mid-array")
        arrays[name] = np.frombuffer(payload, dtype=dtype, count=n, offset=offset)
        offset = end
    member_overrides: dict[int, np.ndarray] = {}
    for i, size in header["overrides"]:
        end = offset + int(size) * 8
        if end > len(payload):
            raise corrupt("sidecar payload truncated mid-override")
        member_overrides[int(i)] = np.frombuffer(
            payload, dtype="<i8", count=int(size), offset=offset
        )
        offset = end
    if offset != len(payload):
        raise corrupt(
            f"sidecar payload has {len(payload) - offset} trailing bytes"
        )

    table = ObservationTable(scene)
    stop_max = int(arrays["member_stop"].max()) if n else 0
    if stop_max > table.n_obs:
        raise corrupt(
            f"sidecar references observation row {stop_max} but the scene "
            f"has {table.n_obs} rows"
        )
    columns = CompiledColumns(
        table=table,
        matrix=_SidecarMatrix(),
        features=[by_name[name] for name in names],
        factor_feature=arrays["factor_feature"],
        factor_item=arrays["factor_item"],
        potentials=arrays["potentials"],
        member_start=arrays["member_start"],
        member_stop=arrays["member_stop"],
        member_overrides=member_overrides,
        track_order=list(header["track_order"]),
        track_factor_slices={
            tid: (int(start), int(stop))
            for tid, (start, stop) in header["track_factor_slices"].items()
        },
        track_slices_cover_members=bool(header["track_slices_cover_members"]),
    )
    return CompiledScene(
        scene=scene,
        context=FeatureContext.from_scene(scene),
        tracks={t.track_id: t for t in scene.tracks},
        columns=columns,
    )


def warehouse_scorer(warehouse, fixy, fingerprint: str, scene):
    """``(Scorer, from_sidecar)`` for one warehouse scene.

    Warm path: restore the compiled columns from the sidecar keyed by
    ``(fingerprint, model fingerprint)`` — no ``compile_scene`` call.
    Cold path: compile through the engine (its LRU applies) and write
    the sidecar so the *next* audit under this model is warm. Engines
    without a fitted model, or running the scalar pipeline, always
    compile (there is nothing stable to key a sidecar on).
    """
    from repro.core.scoring import Scorer

    learned = fixy.learned
    model_fp = learned.fingerprint() if learned is not None else None
    if model_fp is not None and fixy.vectorized:
        compiled = warehouse.get_compiled(
            fingerprint, model_fp, scene=scene, features=fixy.features
        )
        if compiled is not None:
            return Scorer(compiled), True
    compiled = fixy.compile(scene)
    if model_fp is not None and getattr(compiled, "columns", None) is not None:
        warehouse.put_compiled(fingerprint, model_fp, compiled)
    return Scorer(compiled), False


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
class SceneWarehouse:
    """A content-addressed scene corpus in one SQLite file.

    Args:
        path: Database file (created on first open unless
            ``create=False``; ``":memory:"`` works for tests).
        create: When False, a missing file is a
            :class:`~repro.warehouse.errors.WarehouseError` instead of
            a silently-born empty corpus — what audit paths pass, so a
            typo'd ``--warehouse`` fails loudly.
        timeout: SQLite busy timeout in seconds (cross-process ingest
            contention waits instead of failing).

    Thread-safe: one connection guarded by an RLock (scene scoring
    dominates audit time; serialized store access is not the
    bottleneck). Safe for multi-process use — SQLite serializes
    writers, and content addressing makes racing ingests idempotent.
    """

    def __init__(self, path, create: bool = True, timeout: float = 30.0):
        self.path = str(path)
        if (
            not create
            and self.path != ":memory:"
            and not os.path.exists(self.path)
        ):
            raise WarehouseError(
                f"no warehouse at {self.path!r} (pass create=True, or ingest "
                "with `repro.cli warehouse ingest` first)"
            )
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        self._lock = threading.RLock()
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO warehouse_meta (key, value) "
                "VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        row = self._conn.execute(
            "SELECT value FROM warehouse_meta WHERE key = 'schema_version'"
        ).fetchone()
        stored = int(row[0])
        if stored > SCHEMA_VERSION:
            raise WarehouseError(
                f"warehouse {self.path!r} has schema v{stored}; this build "
                f"reads up to v{SCHEMA_VERSION}"
            )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SceneWarehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._conn.execute("SELECT COUNT(*) FROM scenes").fetchone()
        return int(n)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM scenes WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    # -- ingest --------------------------------------------------------
    def ingest(self, scene, tags: Iterable[str] = ()) -> str:
        """Pack + store one live scene; returns its fingerprint."""
        return self._ingest(frames.pack_scene(scene), scene, tags)

    def ingest_packed(self, blob: bytes, tags: Iterable[str] = ()) -> str:
        """Store an already-packed blob (it is unpacked once for the
        metadata row — and thereby validated)."""
        return self._ingest(bytes(blob), frames.unpack_scene(blob), tags)

    def _ingest(self, blob: bytes, scene, tags: Iterable[str]) -> str:
        fingerprint = frames.scene_fingerprint(blob)
        meta = scene_metadata(scene)
        tag_rows = [(fingerprint, str(t)) for t in dict.fromkeys(tags)]
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO scenes (fingerprint, blob, scene_id, "
                "n_tracks, n_observations, n_frames, duration_s, dt, "
                "ingested_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    fingerprint,
                    sqlite3.Binary(blob),
                    meta["scene_id"],
                    meta["n_tracks"],
                    meta["n_observations"],
                    meta["n_frames"],
                    meta["duration_s"],
                    meta["dt"],
                    time.time(),
                ),
            )
            # Last writer wins the whole tag set, same as the metadata.
            self._conn.execute(
                "DELETE FROM tags WHERE fingerprint = ?", (fingerprint,)
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO tags (fingerprint, tag) VALUES (?, ?)",
                tag_rows,
            )
        _INGESTS.inc()
        _INGEST_BYTES.inc(len(blob))
        return fingerprint

    # -- fetch ---------------------------------------------------------
    def get_blob(self, fingerprint: str) -> bytes:
        """The verified packed bytes for one fingerprint.

        The stored blob is re-hashed on every read; a mismatch raises
        :class:`WarehouseCorruptionError` (the row is left in place for
        the operator).
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT blob FROM scenes WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        if row is None:
            raise UnknownFingerprintError(fingerprint)
        blob = bytes(row[0])
        actual = frames.scene_fingerprint(blob)
        if actual != fingerprint:
            _CORRUPTIONS.inc()
            raise WarehouseCorruptionError(
                fingerprint,
                f"stored bytes re-hash to {actual[:12]}… "
                f"({len(blob)} bytes on disk)",
            )
        _FETCHES.inc()
        _FETCH_BYTES.inc(len(blob))
        return blob

    def get(self, fingerprint: str):
        """The decoded :class:`~repro.core.model.Scene` (verified)."""
        blob = self.get_blob(fingerprint)
        try:
            return frames.unpack_scene(blob)
        except Exception as exc:
            # The hash matched, so the bytes are what was ingested —
            # but they no longer decode (a format bug, not bit rot).
            _CORRUPTIONS.inc()
            raise WarehouseCorruptionError(
                fingerprint, f"verified blob does not unpack: {exc}"
            ) from exc

    def fetch_batches(
        self, fingerprints: Iterable[str], batch: int = DEFAULT_BATCH
    ) -> Iterator[list[tuple[str, object]]]:
        """Yield ``[(fingerprint, scene), ...]`` lists of ≤ ``batch``.

        The out-of-core primitive: at most one batch of decoded scenes
        is materialized per step, and callers that drop each batch
        before advancing keep peak residency at the batch budget.
        """
        batch = max(1, int(batch))
        pending = []
        for fingerprint in fingerprints:
            pending.append(fingerprint)
            if len(pending) >= batch:
                yield [(fp, self.get(fp)) for fp in pending]
                pending = []
        if pending:
            yield [(fp, self.get(fp)) for fp in pending]

    # -- query ---------------------------------------------------------
    def query(self, predicate: ScenePredicate | None = None) -> list[str]:
        """Matching fingerprints in canonical (fingerprint) order.

        ``None`` selects the whole corpus. Runs entirely on the
        metadata indexes — no blob is read — and records the pruned
        count (corpus − matches) in ``repro_warehouse_pruned_total``.
        """
        sql = "SELECT fingerprint FROM scenes"
        params: list = []
        if predicate is not None:
            where, params = predicate.to_sql()
            sql += " WHERE " + where
        sql += " ORDER BY fingerprint"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
            (total,) = self._conn.execute(
                "SELECT COUNT(*) FROM scenes"
            ).fetchone()
        if predicate is not None:
            _PRUNED.inc(int(total) - len(rows))
        return [row[0] for row in rows]

    def count(self, predicate: ScenePredicate | None = None) -> int:
        sql = "SELECT COUNT(*) FROM scenes"
        params: list = []
        if predicate is not None:
            where, params = predicate.to_sql()
            sql += " WHERE " + where
        with self._lock:
            (n,) = self._conn.execute(sql, params).fetchone()
        return int(n)

    def metadata(self, fingerprint: str) -> dict:
        """The indexed metadata row (+ ``tags`` list + ``ingested_at``)."""
        columns = list(INDEXED_FIELDS)
        with self._lock:
            row = self._conn.execute(
                f"SELECT {', '.join(columns)} FROM scenes "
                "WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is None:
                raise UnknownFingerprintError(fingerprint)
            tags = [
                r[0]
                for r in self._conn.execute(
                    "SELECT tag FROM tags WHERE fingerprint = ? ORDER BY tag",
                    (fingerprint,),
                )
            ]
        meta = dict(zip(columns, row))
        meta["tags"] = tags
        return meta

    def iter_metadata(self) -> Iterator[tuple[str, dict, frozenset]]:
        """Full scan: ``(fingerprint, metadata, tags)`` per scene, in
        fingerprint order — the reference the indexed :meth:`query` is
        property-tested against."""
        for fingerprint in self.query():
            meta = self.metadata(fingerprint)
            tags = frozenset(meta.pop("tags"))
            yield fingerprint, meta, tags

    # -- compiled-columns sidecar -------------------------------------
    def put_compiled(
        self, fingerprint: str, model_fingerprint: str, compiled
    ) -> bool:
        """Persist a compiled scene's factor arrays for warm audits.

        Returns False (stores nothing) for scalar-path compiles — only
        columnar compiles carry the arrays the sidecar format holds.
        """
        columns = getattr(compiled, "columns", None)
        if columns is None or model_fingerprint is None:
            return False
        payload = pack_compiled(columns)
        checksum = hashlib.blake2b(payload, digest_size=20).hexdigest()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO compiled (fingerprint, "
                "model_fingerprint, payload, checksum, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    fingerprint,
                    model_fingerprint,
                    sqlite3.Binary(payload),
                    checksum,
                    time.time(),
                ),
            )
        return True

    def get_compiled(
        self, fingerprint: str, model_fingerprint: str | None, scene, features
    ):
        """The sidecar-restored compiled scene, or ``None`` on a miss.

        A miss is any of: no row for ``(fingerprint, model
        fingerprint)`` — the invalidation rule; a future sidecar format;
        stored feature names that no longer resolve against the live
        engine. A checksum failure is *not* a miss — it raises
        :class:`WarehouseCorruptionError`.
        """
        if model_fingerprint is None:
            _COMPILED_MISSES.inc()
            return None
        with self._lock:
            row = self._conn.execute(
                "SELECT payload, checksum FROM compiled WHERE "
                "fingerprint = ? AND model_fingerprint = ?",
                (fingerprint, model_fingerprint),
            ).fetchone()
        if row is None:
            _COMPILED_MISSES.inc()
            return None
        payload, checksum = bytes(row[0]), row[1]
        actual = hashlib.blake2b(payload, digest_size=20).hexdigest()
        if actual != checksum:
            _CORRUPTIONS.inc()
            raise WarehouseCorruptionError(
                fingerprint, "compiled sidecar failed its checksum"
            )
        compiled = restore_compiled(
            payload, scene, features, fingerprint=fingerprint
        )
        if compiled is None:
            _COMPILED_MISSES.inc()
        else:
            _COMPILED_HITS.inc()
        return compiled

    def gc_compiled(self, keep_models: Iterable[str]) -> dict:
        """Drop sidecar rows whose model fingerprint was rotated out.

        Keying the sidecar by model fingerprint makes refits
        *invalidate* old rows (they stop matching) but never reclaims
        them — a corpus audited across many model generations
        accumulates dead payload bytes. ``keep_models`` is the set of
        fingerprints still in service (typically the current model's);
        every compiled row under any other fingerprint is deleted in
        one transaction. Returns a report::

            {"kept_models": [...], "dropped_models": [...],
             "rows_dropped": N, "bytes_reclaimed": B,
             "rows_kept": M, "bytes_kept": K}

        Scene blobs and tags are never touched — gc is strictly about
        the derived compiled-columns cache, which any audit can
        rebuild.
        """
        keep = {str(m) for m in keep_models}
        with self._lock, self._conn:
            rows = self._conn.execute(
                "SELECT model_fingerprint, COUNT(*), "
                "COALESCE(SUM(LENGTH(payload)), 0) FROM compiled "
                "GROUP BY model_fingerprint"
            ).fetchall()
            dropped = [
                (fp, int(n), int(nbytes))
                for fp, n, nbytes in rows
                if fp not in keep
            ]
            for fp, _n, _b in dropped:
                self._conn.execute(
                    "DELETE FROM compiled WHERE model_fingerprint = ?", (fp,)
                )
        rows_dropped = sum(n for _fp, n, _b in dropped)
        bytes_reclaimed = sum(b for _fp, _n, b in dropped)
        _GC_ROWS.inc(rows_dropped)
        _GC_BYTES.inc(bytes_reclaimed)
        kept = [(fp, int(n), int(b)) for fp, n, b in rows if fp in keep]
        return {
            "kept_models": sorted(fp for fp, _n, _b in kept),
            "dropped_models": sorted(fp for fp, _n, _b in dropped),
            "rows_dropped": rows_dropped,
            "bytes_reclaimed": bytes_reclaimed,
            "rows_kept": sum(n for _fp, n, _b in kept),
            "bytes_kept": sum(b for _fp, _n, b in kept),
        }

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        """Corpus-level counters for ``warehouse stats`` and ``hello``."""
        with self._lock:
            (scenes, blob_bytes) = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(blob)), 0) FROM scenes"
            ).fetchone()
            (compiled, compiled_bytes) = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                "FROM compiled"
            ).fetchone()
            (tags,) = self._conn.execute(
                "SELECT COUNT(DISTINCT tag) FROM tags"
            ).fetchone()
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "scenes": int(scenes),
            "blob_bytes": int(blob_bytes),
            "compiled": int(compiled),
            "compiled_bytes": int(compiled_bytes),
            "tags": int(tags),
        }
