"""Persistent content-addressed scene corpus store with indexed pruning.

Public surface:

- :class:`SceneWarehouse` — the SQLite-backed store mapping
  ``scene_fingerprint → packed scene blob`` plus the compiled-columns
  sidecar for warm audits;
- :class:`ScenePredicate` — the JSON-round-trippable pruning algebra
  (``eq``/``range``/``tag``/``and``/``or``) over :data:`INDEXED_FIELDS`;
- the typed error family rooted at :class:`WarehouseError`.

Nothing here imports the engine at module load — the store is usable
from tooling (ingest, query, stats) without paying for NumPy-heavy
compile machinery until a sidecar restore actually needs it.
"""

from repro.warehouse.errors import (
    PredicateError,
    UnknownFingerprintError,
    WarehouseCorruptionError,
    WarehouseError,
)
from repro.warehouse.index import INDEXED_FIELDS, ScenePredicate
from repro.warehouse.store import (
    DEFAULT_BATCH,
    SceneWarehouse,
    pack_compiled,
    restore_compiled,
    scene_metadata,
    warehouse_scorer,
)

__all__ = [
    "DEFAULT_BATCH",
    "INDEXED_FIELDS",
    "PredicateError",
    "ScenePredicate",
    "SceneWarehouse",
    "UnknownFingerprintError",
    "WarehouseCorruptionError",
    "WarehouseError",
    "pack_compiled",
    "restore_compiled",
    "scene_metadata",
    "warehouse_scorer",
]
