"""Evaluation harness: metrics, experiments, and reporting."""

from repro.eval.experiments import (
    CaseStudyResult,
    MissingObservationResult,
    ModelErrorsResult,
    RecallResult,
    RuntimeResult,
    SceneCoverageResult,
    Table3Result,
    figure_case_studies,
    get_dataset,
    missing_observation_experiment,
    model_errors_experiment,
    recall_experiment,
    runtime_experiment,
    scene_coverage,
    table3,
)
from repro.eval.harness import FullReport, run_all
from repro.eval.perf import ab_compile_rank, render_report
from repro.eval.metrics import (
    PrecisionSummary,
    mean_or_nan,
    precision_at_k,
    recall_of_set,
    summarize_precisions,
)
from repro.eval.reporting import format_kv, format_table
from repro.eval.sweeps import (
    SweepPoint,
    SweepResult,
    training_size_sweep,
    vendor_noise_sweep,
)

__all__ = [
    "CaseStudyResult",
    "FullReport",
    "MissingObservationResult",
    "ModelErrorsResult",
    "PrecisionSummary",
    "RecallResult",
    "RuntimeResult",
    "SceneCoverageResult",
    "SweepPoint",
    "SweepResult",
    "Table3Result",
    "figure_case_studies",
    "format_kv",
    "format_table",
    "ab_compile_rank",
    "get_dataset",
    "mean_or_nan",
    "missing_observation_experiment",
    "model_errors_experiment",
    "precision_at_k",
    "recall_experiment",
    "recall_of_set",
    "render_report",
    "run_all",
    "runtime_experiment",
    "scene_coverage",
    "summarize_precisions",
    "table3",
    "training_size_sweep",
    "vendor_noise_sweep",
]
