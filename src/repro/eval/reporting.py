"""Plain-text tables for experiment output.

The harness prints the same rows the paper's tables report, so a run can
be eyeballed against the published numbers (shape, not absolute values —
see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_kv"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an ASCII table with column alignment."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_kv(pairs: Sequence[tuple[str, object]], title: str = "") -> str:
    """Render key/value result pairs, one per line."""
    width = max((len(k) for k, _ in pairs), default=0)
    out = []
    if title:
        out.append(title)
    for key, value in pairs:
        out.append(f"{key.ljust(width)}  {value}")
    return "\n".join(out)
