"""Sensitivity sweeps around the paper's operating point.

The paper evaluates at one vendor-quality/training-size point per
dataset. These sweeps chart the neighborhood:

- :func:`vendor_noise_sweep` — missing-track precision as the vendor
  gets worse. Fixy's precision should *rise* with the error base rate
  (more true errors to surface) while remaining above the consistency-MA
  baseline throughout.
- :func:`training_size_sweep` — the learning curve: how many labeled
  scenes the feature distributions need before ranking quality
  saturates. The paper asserts "default hyperparameters work in all
  cases"; this measures how little data that takes.

Both return plain result objects with ``to_text()`` renderings and are
wrapped by ``benchmarks/bench_sweeps.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import ConsistencyAssertion, order_randomly
from repro.core import MissingTrackFinder
from repro.datagen import SceneGenerator
from repro.datasets import (
    SYNTHETIC_INTERNAL,
    build_labeled_scene,
)
from repro.eval.metrics import precision_at_k
from repro.eval.reporting import format_table
from repro.labelers import HumanLabelerConfig

__all__ = [
    "SweepPoint",
    "SweepResult",
    "vendor_noise_sweep",
    "training_size_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One setting of the swept parameter."""

    parameter: float
    fixy_precision_at_10: float
    baseline_precision_at_10: float
    n_errors_per_scene: float


@dataclass
class SweepResult:
    """A full sweep with a table rendering."""

    name: str
    parameter_name: str
    points: list[SweepPoint] = field(default_factory=list)

    def to_text(self) -> str:
        rows = [
            [
                f"{p.parameter:g}",
                f"{p.fixy_precision_at_10:.0%}",
                f"{p.baseline_precision_at_10:.0%}",
                f"{p.n_errors_per_scene:.1f}",
            ]
            for p in self.points
        ]
        return format_table(
            [self.parameter_name, "Fixy P@10", "MA(rand) P@10", "errors/scene"],
            rows,
            title=self.name,
        )

    @property
    def fixy_curve(self) -> list[float]:
        return [p.fixy_precision_at_10 for p in self.points]


def _scene_precisions(finder, labeled_scenes, seed_base=0):
    """(fixy, baseline) per-scene precision@10 lists."""
    consistency = ConsistencyAssertion()
    fixy_p, base_p, error_counts = [], [], []
    for i, ls in enumerate(labeled_scenes):
        auditor = ls.auditor()
        missing = ls.ledger.missing_track_object_ids(ls.scene_id)
        error_counts.append(len(missing))
        if not missing:
            continue
        ranked = finder.rank(ls.scene, top_k=10)
        fixy_p.append(
            precision_at_k(
                [auditor.audit_missing_track(s.item).is_error for s in ranked], 10
            )
        )
        flags = order_randomly(consistency.check_scene(ls.scene), seed=seed_base + i)
        base_p.append(
            precision_at_k(
                [auditor.audit_missing_track(f.item).is_error for f in flags[:10]],
                10,
            )
        )
    return fixy_p, base_p, error_counts


def vendor_noise_sweep(
    miss_rates: tuple[float, ...] = (0.05, 0.15, 0.3, 0.5),
    n_scenes: int = 4,
    seed: int = 90_000,
) -> SweepResult:
    """Missing-track precision as the vendor's miss rate grows."""
    generator = SceneGenerator()
    # One fixed training resource (clean labels) for all points.
    train_scenes = _training_scenes(generator, n_scenes=6, seed=seed)
    finder = MissingTrackFinder().fit(train_scenes)

    result = SweepResult(
        name="Sweep: vendor miss rate vs missing-track precision",
        parameter_name="miss rate",
    )
    for rate in miss_rates:
        vendor = HumanLabelerConfig(
            miss_track_base_rate=rate,
            short_track_miss_boost=0.3,
        )
        labeled = [
            build_labeled_scene(
                generator.generate(f"noise-{rate}-{i}", seed=seed + 100 + i),
                vendor,
                SYNTHETIC_INTERNAL.detector,
                seed=seed + 200 + i,
            )
            for i in range(n_scenes)
        ]
        fixy_p, base_p, errors = _scene_precisions(finder, labeled, seed_base=seed)
        result.points.append(
            SweepPoint(
                parameter=rate,
                fixy_precision_at_10=float(np.mean(fixy_p)) if fixy_p else 0.0,
                baseline_precision_at_10=float(np.mean(base_p)) if base_p else 0.0,
                n_errors_per_scene=float(np.mean(errors)),
            )
        )
    return result


def training_size_sweep(
    n_train_options: tuple[int, ...] = (1, 2, 4, 8),
    n_scenes: int = 4,
    seed: int = 91_000,
) -> SweepResult:
    """The learning curve: precision vs number of training scenes."""
    generator = SceneGenerator()
    all_train = _training_scenes(generator, n_scenes=max(n_train_options), seed=seed)
    labeled = [
        build_labeled_scene(
            generator.generate(f"lc-{i}", seed=seed + 100 + i),
            SYNTHETIC_INTERNAL.vendor,
            SYNTHETIC_INTERNAL.detector,
            seed=seed + 200 + i,
        )
        for i in range(n_scenes)
    ]

    result = SweepResult(
        name="Sweep: training scenes vs missing-track precision",
        parameter_name="train scenes",
    )
    for n_train in n_train_options:
        finder = MissingTrackFinder(min_samples=4).fit(all_train[:n_train])
        fixy_p, base_p, errors = _scene_precisions(finder, labeled, seed_base=seed)
        result.points.append(
            SweepPoint(
                parameter=float(n_train),
                fixy_precision_at_10=float(np.mean(fixy_p)) if fixy_p else 0.0,
                baseline_precision_at_10=float(np.mean(base_p)) if base_p else 0.0,
                n_errors_per_scene=float(np.mean(errors)),
            )
        )
    return result


def _training_scenes(generator: SceneGenerator, n_scenes: int, seed: int):
    from repro.association import TrackBuilder
    from repro.labelers import HumanLabeler

    builder = TrackBuilder()
    labeler = HumanLabeler(
        HumanLabelerConfig(miss_track_base_rate=0.02, class_flip_rate=0.0)
    )
    scenes = []
    for i in range(n_scenes):
        world = generator.generate(f"sweep-train-{i}", seed=seed + i)
        observations, _ = labeler.label_scene(world, seed=seed + 50 + i)
        scene = builder.build_scene(world.scene_id, world.dt, observations)
        scene.metadata["ego_poses"] = list(world.ego_poses)
        scenes.append(scene)
    return scenes
