"""A/B performance harness: scalar reference vs columnar fast path.

Benchmarks the online phase (compile one scene's factor representation,
then rank its tracks) at increasing scene densities, once through the
scalar reference pipeline (``vectorized=False``) and once through the
production fast path (columnar compile + array scoring + warmed density
grids). The offline phase — fitting and density-grid construction — is
deliberately excluded from the per-scene timings: it is one-time model
preparation, amortized over every scene served afterwards.

Used by ``benchmarks/run_perf_harness.py`` (which persists the results
to ``BENCH_scaling.json`` so PRs can track the perf trajectory), by
``benchmarks/bench_vectorized_ab.py`` (which asserts the speedup
floor), and by ``python -m repro.cli bench``.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core import MissingTrackFinder, Scorer
from repro.core.compile import compile_scene

__all__ = ["ab_compile_rank", "render_report"]

DEFAULT_DENSITIES = (10, 25, 50, 100)


def _build_scene(n_objects: int, seed: int):
    from repro.datagen import SceneConfig, SceneGenerator
    from repro.datasets import SYNTHETIC_INTERNAL, build_labeled_scene

    config = SceneConfig(n_objects_range=(n_objects, n_objects))
    world = SceneGenerator(config).generate(f"ab-{n_objects}", seed=seed)
    labeled = build_labeled_scene(
        world, SYNTHETIC_INTERNAL.vendor, SYNTHETIC_INTERNAL.detector, seed=1
    )
    return labeled.scene


def _time_compile_rank(fixy, scene, vectorized: bool) -> tuple[float, float, int]:
    """One uncached compile+rank pass; returns (compile_s, rank_s, n_ranked)."""
    t0 = time.perf_counter()
    compiled = compile_scene(
        scene,
        fixy.features,
        learned=fixy.learned,
        aofs=fixy.aofs,
        vectorized=vectorized,
    )
    t1 = time.perf_counter()
    ranked = Scorer(compiled).rank_tracks(
        lambda track: not track.has_human and track.has_model
    )
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1, len(ranked)


def ab_compile_rank(
    densities: Sequence[int] = DEFAULT_DENSITIES,
    repeats: int = 3,
) -> dict:
    """Compare scalar vs fast compile+rank across scene densities.

    Returns a JSON-ready report::

        {"workload": ..., "cases": [
            {"n_objects", "n_tracks", "n_observations",
             "scalar_ms", "fast_ms", "speedup", ...}, ...]}

    Each timing is the best of ``repeats`` runs (cache cleared — every
    run compiles from scratch).
    """
    from repro.datasets import SYNTHETIC_INTERNAL
    from repro.eval import get_dataset

    dataset = get_dataset(SYNTHETIC_INTERNAL)
    finder = MissingTrackFinder().fit(dataset.train_scenes)
    fixy = finder.fixy
    # Offline prep: build density grids now so per-scene timings measure
    # the steady-state serving path.
    fixy.warmup_fast_eval()

    cases = []
    for n_objects in densities:
        scene = _build_scene(n_objects, seed=n_objects)
        best = {"scalar": (float("inf"), float("inf")), "fast": (float("inf"), float("inf"))}
        ranked_counts = {}
        for label, vectorized in (("scalar", False), ("fast", True)):
            for _ in range(repeats):
                compile_s, rank_s, n_ranked = _time_compile_rank(
                    fixy, scene, vectorized
                )
                if compile_s + rank_s < sum(best[label]):
                    best[label] = (compile_s, rank_s)
                ranked_counts[label] = n_ranked
        scalar_ms = 1e3 * sum(best["scalar"])
        fast_ms = 1e3 * sum(best["fast"])
        cases.append(
            {
                "n_objects": int(n_objects),
                "n_tracks": len(scene.tracks),
                "n_observations": len(scene.observations),
                "n_ranked": ranked_counts["fast"],
                "scalar_compile_ms": round(1e3 * best["scalar"][0], 3),
                "scalar_rank_ms": round(1e3 * best["scalar"][1], 3),
                "fast_compile_ms": round(1e3 * best["fast"][0], 3),
                "fast_rank_ms": round(1e3 * best["fast"][1], 3),
                "scalar_ms": round(scalar_ms, 3),
                "fast_ms": round(fast_ms, 3),
                "speedup": round(scalar_ms / fast_ms, 2) if fast_ms > 0 else None,
            }
        )
    return {
        "workload": "MissingTrackFinder compile+rank, synthetic internal profile",
        "repeats": repeats,
        "cases": cases,
    }


def render_report(report: dict) -> str:
    """Human-readable table for a :func:`ab_compile_rank` report."""
    lines = [
        "A/B compile+rank: scalar reference vs columnar fast path",
        f"  workload: {report['workload']}",
        "  objects  tracks  obs    scalar(ms)  fast(ms)  speedup",
    ]
    for case in report["cases"]:
        speedup = case["speedup"]
        speedup_text = f"{speedup:>7.1f}x" if speedup is not None else "    n/a"
        lines.append(
            f"  {case['n_objects']:>7d} {case['n_tracks']:>7d} "
            f"{case['n_observations']:>6d} {case['scalar_ms']:>10.1f} "
            f"{case['fast_ms']:>9.1f} {speedup_text}"
        )
    return "\n".join(lines)
