"""Experiment definitions: one function per paper table/figure (§8).

Each function returns a structured result object with a ``to_text()``
rendering that prints the same rows the paper reports. The benchmark
harness (``benchmarks/``) wraps these functions one-to-one; see DESIGN.md
§4 for the experiment index and EXPERIMENTS.md for paper-vs-measured.

Datasets are built once per process and memoized (they are deterministic
functions of their profiles).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.association import TrackBuilder
from repro.baselines import (
    AppearAssertion,
    ConsistencyAssertion,
    FlickerAssertion,
    MultiboxAssertion,
    order_by_confidence,
    order_randomly,
    run_assertions,
    uncertainty_sample_tracks,
)
from repro.core import (
    MissingObservationFinder,
    MissingTrackFinder,
    ModelErrorFinder,
    top_k_per_class,
)
from repro.datagen import SceneConfig, SceneGenerator
from repro.datasets import (
    SYNTHETIC_INTERNAL,
    SYNTHETIC_LYFT,
    BuiltDataset,
    DatasetProfile,
    LabeledScene,
    build_dataset,
    build_labeled_scene,
)
from repro.eval.metrics import (
    PrecisionSummary,
    precision_at_k,
    recall_of_set,
    summarize_precisions,
)
from repro.eval.reporting import format_kv, format_table
from repro.labelers import ErrorType, HumanLabelerConfig

__all__ = [
    "get_dataset",
    "table3",
    "recall_experiment",
    "scene_coverage",
    "missing_observation_experiment",
    "model_errors_experiment",
    "runtime_experiment",
    "figure_case_studies",
    "Table3Result",
    "RecallResult",
    "SceneCoverageResult",
    "MissingObservationResult",
    "ModelErrorsResult",
    "RuntimeResult",
    "CaseStudyResult",
]

_DATASET_CACHE: dict[tuple, BuiltDataset] = {}


def get_dataset(
    profile: DatasetProfile,
    n_train_scenes: int | None = None,
    n_val_scenes: int | None = None,
) -> BuiltDataset:
    """Build (or fetch the memoized) dataset for a profile."""
    key = (profile.name, n_train_scenes, n_val_scenes, profile.seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = build_dataset(
            profile, n_train_scenes=n_train_scenes, n_val_scenes=n_val_scenes
        )
    return _DATASET_CACHE[key]


def _scenes_with_missing_tracks(dataset: BuiltDataset) -> list[LabeledScene]:
    return [
        ls
        for ls in dataset.val_scenes
        if ls.ledger.missing_track_object_ids(ls.scene_id)
    ]


# ---------------------------------------------------------------------------
# Table 3: precision of missing-track search
# ---------------------------------------------------------------------------
@dataclass
class Table3Result:
    """Reproduction of Table 3."""

    summaries: list[PrecisionSummary] = field(default_factory=list)

    def to_text(self) -> str:
        rows = [s.as_row() for s in self.summaries]
        return format_table(
            ["Method", "Dataset", "P@10", "P@5", "P@1"],
            rows,
            title="Table 3: precision of finding tracks missed by humans",
        )

    def lookup(self, method: str, dataset: str) -> PrecisionSummary:
        for s in self.summaries:
            if s.method == method and s.dataset == dataset:
                return s
        raise KeyError(f"no summary for ({method}, {dataset})")


def table3(
    profiles: tuple[DatasetProfile, ...] = (SYNTHETIC_LYFT, SYNTHETIC_INTERNAL),
    n_train_scenes: int | None = None,
    n_val_scenes: int | None = None,
) -> Table3Result:
    """Reproduce Table 3: Fixy vs ad-hoc MA (rand/conf) on both datasets."""
    result = Table3Result()
    for profile in profiles:
        dataset = get_dataset(profile, n_train_scenes, n_val_scenes)
        label = "Lyft" if "lyft" in profile.name else "Internal"
        finder = MissingTrackFinder().fit(dataset.train_scenes)
        consistency = ConsistencyAssertion()

        fixy_hits: list[list[bool]] = []
        rand_hits: list[list[bool]] = []
        conf_hits: list[list[bool]] = []
        for i, ls in enumerate(_scenes_with_missing_tracks(dataset)):
            auditor = ls.auditor()
            ranked = finder.rank(ls.scene, top_k=10)
            fixy_hits.append(
                [auditor.audit_missing_track(s.item).is_error for s in ranked]
            )
            flags = consistency.check_scene(ls.scene)
            rand_hits.append(
                [
                    auditor.audit_missing_track(f.item).is_error
                    for f in order_randomly(flags, seed=i)[:10]
                ]
            )
            conf_hits.append(
                [
                    auditor.audit_missing_track(f.item).is_error
                    for f in order_by_confidence(flags)[:10]
                ]
            )

        result.summaries.append(summarize_precisions("Fixy", label, fixy_hits))
        result.summaries.append(
            summarize_precisions("Ad-hoc MA (rand)", label, rand_hits)
        )
        result.summaries.append(
            summarize_precisions("Ad-hoc MA (conf)", label, conf_hits)
        )
    return result


# ---------------------------------------------------------------------------
# §8.2 recall on the exhaustively-audited scene
# ---------------------------------------------------------------------------
@dataclass
class RecallResult:
    """Reproduction of the §8.2 recall experiment."""

    n_missing_tracks: int
    n_found: int
    recall: float
    per_class_found: dict[str, int]

    def to_text(self) -> str:
        pairs = [
            ("missing tracks in vetted scene", self.n_missing_tracks),
            ("found in top-10 per class", self.n_found),
            ("recall", f"{self.recall:.0%}"),
        ]
        pairs += [
            (f"  found[{cls}]", n) for cls, n in sorted(self.per_class_found.items())
        ]
        return format_kv(pairs, title="§8.2 recall on the vetted scene")


def recall_experiment(seed: int = 777) -> RecallResult:
    """Reproduce the §8.2 recall study: a dense scene that failed audit.

    The paper exhaustively audited one 15-second internal scene containing
    24 missing tracks and measured recall of the top-10 ranked errors per
    class (75%, 18/24). We synthesize an equivalently bad scene: dense
    traffic and a vendor having a very bad day.
    """
    dense_config = SceneConfig(n_objects_range=(34, 40), partial_presence_prob=0.3)
    failing_vendor = HumanLabelerConfig(
        miss_track_base_rate=0.45,
        short_track_miss_boost=0.45,
        small_class_miss_boost=0.15,
        far_miss_boost=0.004,
    )
    world = SceneGenerator(dense_config).generate("vetted-scene", seed=seed)
    labeled = build_labeled_scene(
        world, failing_vendor, SYNTHETIC_INTERNAL.detector, seed=seed
    )

    dataset = get_dataset(SYNTHETIC_INTERNAL)
    finder = MissingTrackFinder().fit(dataset.train_scenes)
    ranked = top_k_per_class(finder.rank(labeled.scene), k=10)

    auditor = labeled.auditor()
    missing_ids = labeled.ledger.missing_track_object_ids(labeled.scene_id)
    found_ids: set[str] = set()
    per_class: dict[str, int] = {}
    for scored in ranked:
        decision = auditor.audit_missing_track(scored.item)
        if decision.is_error and decision.matched is not None:
            gt = decision.matched.gt_object_id
            if gt not in found_ids:
                found_ids.add(gt)
                cls = decision.matched.object_class
                per_class[cls] = per_class.get(cls, 0) + 1

    return RecallResult(
        n_missing_tracks=len(missing_ids),
        n_found=len(found_ids),
        recall=recall_of_set(found_ids, missing_ids),
        per_class_found=per_class,
    )


# ---------------------------------------------------------------------------
# §8.2 scene coverage on the Lyft-like dataset
# ---------------------------------------------------------------------------
@dataclass
class SceneCoverageResult:
    """Reproduction of the §8.2 scene-coverage claim."""

    n_scenes: int
    n_scenes_with_errors: int
    n_scenes_found_in_top10: int

    @property
    def coverage(self) -> float:
        if self.n_scenes_with_errors == 0:
            return float("nan")
        return self.n_scenes_found_in_top10 / self.n_scenes_with_errors

    def to_text(self) -> str:
        return format_kv(
            [
                ("validation scenes", self.n_scenes),
                ("scenes with missing-track errors", self.n_scenes_with_errors),
                ("scenes with a true error in top 10", self.n_scenes_found_in_top10),
                ("coverage", f"{self.coverage:.0%}"),
            ],
            title="§8.2 scene coverage (Lyft-like dataset)",
        )


def scene_coverage(
    n_val_scenes: int | None = None,
) -> SceneCoverageResult:
    """For every error scene, does Fixy put a true error in the top 10?"""
    dataset = get_dataset(SYNTHETIC_LYFT, n_val_scenes=n_val_scenes)
    finder = MissingTrackFinder().fit(dataset.train_scenes)
    with_errors = _scenes_with_missing_tracks(dataset)
    found = 0
    for ls in with_errors:
        auditor = ls.auditor()
        ranked = finder.rank(ls.scene, top_k=10)
        if any(auditor.audit_missing_track(s.item).is_error for s in ranked):
            found += 1
    return SceneCoverageResult(
        n_scenes=len(dataset.val_scenes),
        n_scenes_with_errors=len(with_errors),
        n_scenes_found_in_top10=found,
    )


# ---------------------------------------------------------------------------
# §8.3 missing observations within tracks
# ---------------------------------------------------------------------------
@dataclass
class MissingObservationResult:
    """Reproduction of the §8.3 case study.

    Because several vendor-skipped frames coexist per synthetic scene (the
    paper's datasets had exactly one in total), the per-error statistic is
    the *adjusted rank*: 1 + the number of clean (non-error) candidates
    Fixy ranked above the error. The paper's single instance ranking at
    the very top corresponds to adjusted rank 1.
    """

    n_instances: int
    n_surfaced: int
    adjusted_ranks: list[int]
    n_clean_candidates: list[int]

    @property
    def fraction_rank_1(self) -> float:
        """Fraction of surfaced errors with no clean candidate above."""
        if not self.adjusted_ranks:
            return float("nan")
        return sum(1 for r in self.adjusted_ranks if r == 1) / len(
            self.adjusted_ranks
        )

    @property
    def mean_adjusted_rank(self) -> float:
        return (
            float(np.mean(self.adjusted_ranks))
            if self.adjusted_ranks
            else float("nan")
        )

    @property
    def mean_random_rank(self) -> float:
        """Expected adjusted rank under the random-ordering baseline."""
        if not self.n_clean_candidates:
            return float("nan")
        return float(np.mean([(n / 2.0) + 1 for n in self.n_clean_candidates]))

    def to_text(self) -> str:
        return format_kv(
            [
                ("missing-observation instances", self.n_instances),
                ("surfaced in the candidate ranking", self.n_surfaced),
                ("ranked above every clean candidate", f"{self.fraction_rank_1:.0%}"),
                ("mean adjusted Fixy rank", f"{self.mean_adjusted_rank:.2f}"),
                ("mean adjusted random rank", f"{self.mean_random_rank:.2f}"),
            ],
            title="§8.3 missing observations within tracks",
        )


def missing_observation_experiment(seed: int = 4242) -> MissingObservationResult:
    """Reproduce §8.3: rank vendor-skipped frames inside labeled tracks.

    The paper found a single such error across both datasets and Fixy
    ranked it first. To make the statistic meaningful we synthesize
    several scenes whose vendor skips frames more often, then record the
    rank Fixy assigns to each skipped frame among all candidate bundles
    of its scene.
    """
    skipping_vendor = HumanLabelerConfig(
        miss_track_base_rate=0.05,
        miss_frames_rate=0.3,
        class_flip_rate=0.0,
    )
    generator = SceneGenerator()
    dataset = get_dataset(SYNTHETIC_INTERNAL)
    finder = MissingObservationFinder().fit(dataset.train_scenes)

    adjusted_ranks: list[int] = []
    clean_counts: list[int] = []
    n_instances = 0
    n_surfaced = 0
    for i in range(6):
        world = generator.generate(f"skip-{i}", seed=seed + i)
        labeled = build_labeled_scene(
            world, skipping_vendor, SYNTHETIC_INTERNAL.detector, seed=seed + 100 + i
        )
        drops = labeled.ledger.of_type(ErrorType.MISSING_OBSERVATION)
        n_instances += len(drops)
        if not drops:
            continue
        auditor = labeled.auditor()
        ranked = finder.rank(labeled.scene)
        if not ranked:
            continue
        # Walk the ranking once, tracking how many clean candidates have
        # been seen before each true error surfaces.
        clean_above = 0
        n_clean_total = 0
        first_position: dict[str, int] = {}
        for scored in ranked:
            decision = auditor.audit_missing_observation(scored.item)
            if decision.is_error and decision.matched is not None:
                first_position.setdefault(
                    decision.matched.error_id, clean_above + 1
                )
            else:
                clean_above += 1
                n_clean_total += 1
        for record in drops:
            if record.error_id in first_position:
                n_surfaced += 1
                adjusted_ranks.append(first_position[record.error_id])
                clean_counts.append(n_clean_total)
    return MissingObservationResult(
        n_instances=n_instances,
        n_surfaced=n_surfaced,
        adjusted_ranks=adjusted_ranks,
        n_clean_candidates=clean_counts,
    )


# ---------------------------------------------------------------------------
# §8.4 novel model prediction errors
# ---------------------------------------------------------------------------
@dataclass
class ModelErrorsResult:
    """Reproduction of §8.4."""

    fixy_precision_at_10: float
    uncertainty_precision_at_10: float
    n_scenes: int
    max_confidence_of_found_error: float
    n_high_conf_errors_found: int

    def to_text(self) -> str:
        return format_kv(
            [
                ("scenes", self.n_scenes),
                ("Fixy precision@10", f"{self.fixy_precision_at_10:.0%}"),
                (
                    "uncertainty sampling precision@10",
                    f"{self.uncertainty_precision_at_10:.0%}",
                ),
                (
                    "max confidence of a Fixy-found error",
                    f"{self.max_confidence_of_found_error:.2f}",
                ),
                (
                    "errors found with confidence >= 0.9",
                    self.n_high_conf_errors_found,
                ),
            ],
            title="§8.4 novel ML model prediction errors "
            "(after excluding ad-hoc MA finds)",
        )


def model_errors_experiment(n_scenes: int = 5) -> ModelErrorsResult:
    """Reproduce §8.4: find model errors the ad-hoc MAs cannot.

    Per the paper: no human labels are assumed; the appear/flicker/
    multibox assertions run first and their finds are excluded; Fixy and
    uncertainty sampling rank what remains.
    """
    dataset = get_dataset(SYNTHETIC_LYFT)
    finder = ModelErrorFinder().fit(dataset.train_scenes)
    builder = TrackBuilder()
    assertions = [AppearAssertion(), FlickerAssertion(), MultiboxAssertion()]

    fixy_hits: list[list[bool]] = []
    unc_hits: list[list[bool]] = []
    max_conf = 0.0
    n_high_conf = 0
    for ls in dataset.val_scenes[:n_scenes]:
        # §8.4 assumes no human proposals: re-associate model output alone.
        model_scene = builder.build_scene(
            ls.scene_id + "-model", ls.world.dt, list(ls.model_observations)
        )
        model_scene.metadata["ego_poses"] = list(ls.world.ego_poses)
        auditor = ls.auditor()

        flagged = run_assertions(assertions, model_scene)
        excluded_ids: set[str] = set()
        for flag in flagged:
            excluded_ids.update(flag.track_id.split("+"))

        ranked = finder.rank(
            model_scene,
            top_k=10,
            exclude=lambda t: t.track_id in excluded_ids,
        )
        hits = []
        for scored in ranked:
            decision = auditor.audit_model_error(scored.item)
            hits.append(decision.is_error)
            if decision.is_error:
                confs = [
                    o.confidence
                    for o in scored.item.observations
                    if o.confidence is not None
                ]
                if confs:
                    max_conf = max(max_conf, max(confs))
                    if max(confs) >= 0.9:
                        n_high_conf += 1
        fixy_hits.append(hits)

        sampled = [
            u
            for u in uncertainty_sample_tracks(model_scene)
            if u.track_id not in excluded_ids
        ][:10]
        unc_hits.append(
            [auditor.audit_model_error(u.item).is_error for u in sampled]
        )

    return ModelErrorsResult(
        fixy_precision_at_10=float(
            np.mean([precision_at_k(h, 10) for h in fixy_hits])
        ),
        uncertainty_precision_at_10=float(
            np.mean([precision_at_k(h, 10) for h in unc_hits])
        ),
        n_scenes=n_scenes,
        max_confidence_of_found_error=max_conf,
        n_high_conf_errors_found=n_high_conf,
    )


# ---------------------------------------------------------------------------
# §8.1 runtime
# ---------------------------------------------------------------------------
@dataclass
class RuntimeResult:
    """Reproduction of the §8.1 runtime claim (< 5 s per 15 s scene)."""

    scene_duration_s: float
    rank_seconds: float
    end_to_end_seconds: float

    def to_text(self) -> str:
        return format_kv(
            [
                ("scene duration", f"{self.scene_duration_s:.0f} s"),
                ("Fixy rank (compile + score)", f"{self.rank_seconds:.2f} s"),
                ("end-to-end incl. association", f"{self.end_to_end_seconds:.2f} s"),
                ("paper budget", "< 5 s"),
            ],
            title="§8.1 runtime on a single 15 s scene (single CPU core)",
        )


def runtime_experiment() -> RuntimeResult:
    """Time Fixy on one 15-second scene."""
    dataset = get_dataset(SYNTHETIC_INTERNAL)
    finder = MissingTrackFinder().fit(dataset.train_scenes)
    ls = dataset.val_scenes[0]

    start = time.perf_counter()
    finder.rank(ls.scene)
    rank_seconds = time.perf_counter() - start

    builder = TrackBuilder()
    start = time.perf_counter()
    scene = builder.build_scene(
        ls.scene_id + "-timed",
        ls.world.dt,
        ls.human_observations + ls.model_observations,
    )
    scene.metadata["ego_poses"] = list(ls.world.ego_poses)
    finder.rank(scene)
    end_to_end = time.perf_counter() - start

    return RuntimeResult(
        scene_duration_s=ls.world.duration_s,
        rank_seconds=rank_seconds,
        end_to_end_seconds=end_to_end,
    )


# ---------------------------------------------------------------------------
# Figures 4/5, 6/7, 9: qualitative case studies
# ---------------------------------------------------------------------------
@dataclass
class CaseStudyResult:
    """Scores for the paper's qualitative figures, as comparable pairs."""

    name: str
    description: str
    values: list[tuple[str, float]]

    def to_text(self) -> str:
        pairs = [(label, f"{value:.3f}") for label, value in self.values]
        return format_kv(pairs, title=f"{self.name}: {self.description}")


def figure_case_studies(seed: int = 31415) -> list[CaseStudyResult]:
    """Reproduce the qualitative figure comparisons as score orderings.

    - Figure 4 vs 5: a consistent, briefly-visible (occluded) motorcycle
      track scores higher than an incoherent spurious track.
    - Figure 6 vs 7: a consistent model-only bundle in a labeled track
      ranks above a wildly volume-inconsistent one.
    - Figure 9: a coherent ghost (smooth overlap, pumping volume) is
      missed by the appear/flicker/multibox assertions but ranked first
      by the model-error finder.
    """
    from repro.core.model import Observation, ObservationBundle, Scene, Track
    from repro.geometry import Box3D, Pose2D

    dataset = get_dataset(SYNTHETIC_INTERNAL)
    results: list[CaseStudyResult] = []
    rng = np.random.default_rng(seed)

    def model_obs(frame, x, y, cls, l, w, h, yaw=0.0, conf=0.9):
        return Observation(
            frame=frame,
            box=Box3D(x=x, y=y, z=0.8, length=l, width=w, height=h, yaw=yaw),
            object_class=cls,
            source="model",
            confidence=conf,
        )

    def human_obs(frame, x, y, cls="car", l=4.5, w=1.9, h=1.7):
        return Observation(
            frame=frame,
            box=Box3D(x=x, y=y, z=0.85, length=l, width=w, height=h),
            object_class=cls,
            source="human",
        )

    def track_from(obs_list, track_id):
        bundles: dict[int, ObservationBundle] = {}
        for o in obs_list:
            bundles.setdefault(o.frame, ObservationBundle(frame=o.frame)).add(o)
        return Track(track_id=track_id, bundles=list(bundles.values()))

    def scene_from(tracks, scene_id):
        return Scene(
            scene_id=scene_id,
            dt=0.2,
            tracks=tracks,
            metadata={"ego_poses": [Pose2D(0.0, 0.0, 0.0)] * 80},
        )

    # ------------------------------------------------------- Figure 4 vs 5
    moto = track_from(
        [
            model_obs(f, 8.0 + 1.6 * f * 0.2, 2.0, "motorcycle", 2.2, 0.9, 1.4)
            for f in range(4)  # visible < 1 second
        ],
        "fig4-motorcycle",
    )
    spurious = track_from(
        [
            model_obs(
                f,
                20.0 + float(rng.normal(0, 2.0)),
                -6.0 + float(rng.normal(0, 2.0)),
                "car",
                max(4.5 * float(np.exp(rng.normal(0, 0.5))), 0.5),
                max(1.9 * float(np.exp(rng.normal(0, 0.5))), 0.4),
                1.7,
                yaw=float(rng.uniform(-3, 3)),
                conf=0.5,
            )
            for f in range(4)
        ],
        "fig5-spurious",
    )
    finder = MissingTrackFinder().fit(dataset.train_scenes)
    ranked = finder.rank(scene_from([moto, spurious], "fig45"))
    scores = {s.track_id: s.score for s in ranked}
    results.append(
        CaseStudyResult(
            name="Figure 4 vs 5",
            description="likely (occluded motorcycle) vs unlikely (spurious) track",
            values=[
                ("occluded motorcycle score", scores.get("fig4-motorcycle", -99.0)),
                ("spurious track score", scores.get("fig5-spurious", -99.0)),
            ],
        )
    )

    # ------------------------------------------------------- Figure 6 vs 7
    def labeled_track_with_gap(track_id, y, gap_frame, gap_box):
        obs_list = []
        for f in range(8):
            x = 5.0 + 2.0 * f * 0.2
            if f == gap_frame:
                obs_list.append(gap_box(f, x))
            else:
                obs_list.append(human_obs(f, x, y))
                obs_list.append(model_obs(f, x + 0.05, y, "car", 4.5, 1.9, 1.7))
        return track_from(obs_list, track_id)

    consistent = labeled_track_with_gap(
        "fig6-consistent",
        3.0,
        4,
        lambda f, x: model_obs(f, x, 3.0, "car", 4.5, 1.9, 1.7),
    )
    inconsistent = labeled_track_with_gap(
        "fig7-inconsistent",
        -3.0,
        4,
        lambda f, x: model_obs(f, x, -3.0, "pedestrian", 0.7, 0.7, 1.75),
    )
    obs_finder = MissingObservationFinder().fit(dataset.train_scenes)
    ranked_bundles = obs_finder.rank(scene_from([consistent, inconsistent], "fig67"))
    bundle_scores = {s.track_id: s.score for s in ranked_bundles}
    results.append(
        CaseStudyResult(
            name="Figure 6 vs 7",
            description="high- vs low-probability missing-observation bundle",
            values=[
                ("consistent bundle score", bundle_scores.get("fig6-consistent", -99.0)),
                (
                    "inconsistent bundle score",
                    bundle_scores.get("fig7-inconsistent", -99.0),
                ),
            ],
        )
    )

    # ------------------------------------------------------------ Figure 9
    coherent_ghost_obs = []
    x, y = 15.0, 5.0
    for f in range(8):
        x += float(rng.normal(0.0, 0.3))
        y += float(rng.normal(0.0, 0.3))
        pump = float(np.exp(rng.normal(0.0, 0.35)))
        coherent_ghost_obs.append(
            model_obs(
                f, x, y, "truck",
                max(8.5 * pump, 1.0), max(2.6 * pump, 0.5), 3.2,
                yaw=float(rng.normal(0.0, 0.6)), conf=0.95,
            )
        )
    ghost = track_from(coherent_ghost_obs, "fig9-ghost")
    normal = track_from(
        [model_obs(f, 30.0 + 2.0 * f * 0.2, -8.0, "car", 4.5, 1.9, 1.7) for f in range(8)],
        "fig9-normal",
    )
    fig9_scene = scene_from([ghost, normal], "fig9")

    flags = run_assertions(
        [AppearAssertion(), FlickerAssertion(), MultiboxAssertion()], fig9_scene
    )
    ghost_flagged = any("fig9-ghost" in f.track_id for f in flags)

    err_finder = ModelErrorFinder().fit(dataset.train_scenes)
    err_ranked = err_finder.rank(fig9_scene)
    ghost_rank = next(
        (i for i, s in enumerate(err_ranked, start=1) if s.track_id == "fig9-ghost"),
        -1,
    )
    results.append(
        CaseStudyResult(
            name="Figure 9",
            description="coherent ghost: missed by ad-hoc MAs, found by Fixy",
            values=[
                ("flagged by appear/flicker/multibox", float(ghost_flagged)),
                ("Fixy rank of ghost (1 = top)", float(ghost_rank)),
            ],
        )
    )
    return results
