"""Run every experiment and render a full report.

``python -m repro.eval.harness`` reproduces all of §8 in one shot and
prints paper-comparable output; the per-experiment benchmarks under
``benchmarks/`` wrap the same functions individually.

Beyond the paper's tables, the report carries an ``audit_api`` section
(:func:`audit_backend_equivalence`): one declarative
:class:`repro.api.AuditSpec` executed on every registered backend, with
per-backend wall-clock and a ranking-identity check against the inline
reference — the living proof that backend choice is a deployment
decision, not a results decision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.eval.experiments import (
    figure_case_studies,
    missing_observation_experiment,
    model_errors_experiment,
    recall_experiment,
    runtime_experiment,
    scene_coverage,
    table3,
)

__all__ = [
    "AuditBackendReport",
    "FullReport",
    "audit_backend_equivalence",
    "run_all",
]


@dataclass
class AuditBackendReport:
    """One AuditSpec's timings + ranking identity across backends."""

    spec_hash: str
    model_fingerprint: str | None
    n_scenes: int
    n_items: int
    #: backend name -> (rank seconds, identical-to-inline)
    backends: list[tuple[str, float, bool]] = field(default_factory=list)

    @property
    def all_identical(self) -> bool:
        return all(identical for _, _, identical in self.backends)

    def to_text(self) -> str:
        lines = [
            "audit API: one spec, every backend "
            f"(spec {self.spec_hash[:12]}, model "
            f"{(self.model_fingerprint or 'unfitted')[:12]}, "
            f"{self.n_scenes} scenes, {self.n_items} items)",
        ]
        for name, seconds, identical in self.backends:
            mark = "==" if identical else "!="
            lines.append(
                f"  {name:<10s} {1e3 * seconds:8.1f} ms  ranking {mark} inline"
            )
        verdict = "byte-identical" if self.all_identical else "DIVERGED"
        lines.append(f"  verdict: rankings {verdict} across backends")
        return "\n".join(lines)


def audit_backend_equivalence(
    backends: tuple[str, ...] = (
        "inline", "threaded", "sharded", "session", "remote",
    ),
    top_k: int = 25,
    n_remote_workers: int = 2,
) -> AuditBackendReport:
    """Run one declarative audit on every backend and compare rankings.

    When ``"remote"`` is among the backends, ``n_remote_workers`` real
    TCP workers (:class:`repro.serving.TcpWorker`, each a
    line-JSON protocol server on an ephemeral port — the same surface
    ``repro.cli serve --listen`` exposes) are spawned in-process and
    the audit is partitioned across them.
    """
    from repro.api import Audit, AuditSpec, FilterSpec
    from repro.datasets import SYNTHETIC_INTERNAL
    from repro.eval.experiments import get_dataset

    dataset = get_dataset(SYNTHETIC_INTERNAL)
    spec = AuditSpec(
        kind="tracks",
        top_k=top_k,
        filters=FilterSpec(has_model=True, has_human=False),
    )
    audit = Audit(spec, train_scenes=dataset.train_scenes)
    scenes = [ls.scene for ls in dataset.val_scenes]

    report = AuditBackendReport(
        spec_hash=spec.spec_hash(),
        model_fingerprint=(
            audit.fixy.learned.fingerprint()
            if audit.fixy.learned is not None
            else None
        ),
        n_scenes=len(scenes),
        n_items=0,
    )
    workers = []
    if "remote" in backends:
        from repro.serving.tcp import TcpWorker

        workers = [
            TcpWorker(audit.fixy) for _ in range(max(1, n_remote_workers))
        ]
    reference = None
    try:
        for name in backends:
            options = (
                {"workers": [w.address for w in workers]}
                if name == "remote"
                else {}
            )
            t0 = time.perf_counter()
            result = audit.run(scenes=scenes, backend=name, **options)
            seconds = time.perf_counter() - t0
            signature = [
                (s.scene_id, s.track_id, s.score, s.n_factors)
                for s in result.items
            ]
            if reference is None:
                reference = signature
                report.n_items = len(result.items)
            report.backends.append((name, seconds, signature == reference))
    finally:
        audit.close()
        for worker in workers:
            worker.stop()
    return report


@dataclass
class FullReport:
    """Results of every experiment, with a combined text rendering."""

    sections: list[tuple[str, object]] = field(default_factory=list)

    def to_text(self) -> str:
        blocks = []
        for _, result in self.sections:
            if isinstance(result, list):
                blocks.extend(r.to_text() for r in result)
            else:
                blocks.append(result.to_text())
        return "\n\n".join(blocks)

    def get(self, name: str):
        for key, result in self.sections:
            if key == name:
                return result
        raise KeyError(f"no section {name!r}")


def run_all(
    n_train_scenes: int | None = None, n_val_scenes: int | None = None
) -> FullReport:
    """Run every experiment in DESIGN.md §4's index."""
    report = FullReport()
    report.sections.append(
        ("table3", table3(n_train_scenes=n_train_scenes, n_val_scenes=n_val_scenes))
    )
    report.sections.append(("recall", recall_experiment()))
    report.sections.append(("scene_coverage", scene_coverage(n_val_scenes=n_val_scenes)))
    report.sections.append(("missing_observation", missing_observation_experiment()))
    report.sections.append(("model_errors", model_errors_experiment()))
    report.sections.append(("runtime", runtime_experiment()))
    report.sections.append(("audit_api", audit_backend_equivalence()))
    report.sections.append(("figures", figure_case_studies()))
    return report


if __name__ == "__main__":
    print(run_all().to_text())
