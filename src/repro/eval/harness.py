"""Run every experiment and render a full report.

``python -m repro.eval.harness`` reproduces all of §8 in one shot and
prints paper-comparable output; the per-experiment benchmarks under
``benchmarks/`` wrap the same functions individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.experiments import (
    figure_case_studies,
    missing_observation_experiment,
    model_errors_experiment,
    recall_experiment,
    runtime_experiment,
    scene_coverage,
    table3,
)

__all__ = ["FullReport", "run_all"]


@dataclass
class FullReport:
    """Results of every experiment, with a combined text rendering."""

    sections: list[tuple[str, object]] = field(default_factory=list)

    def to_text(self) -> str:
        blocks = []
        for _, result in self.sections:
            if isinstance(result, list):
                blocks.extend(r.to_text() for r in result)
            else:
                blocks.append(result.to_text())
        return "\n\n".join(blocks)

    def get(self, name: str):
        for key, result in self.sections:
            if key == name:
                return result
        raise KeyError(f"no section {name!r}")


def run_all(
    n_train_scenes: int | None = None, n_val_scenes: int | None = None
) -> FullReport:
    """Run every experiment in DESIGN.md §4's index."""
    report = FullReport()
    report.sections.append(
        ("table3", table3(n_train_scenes=n_train_scenes, n_val_scenes=n_val_scenes))
    )
    report.sections.append(("recall", recall_experiment()))
    report.sections.append(("scene_coverage", scene_coverage(n_val_scenes=n_val_scenes)))
    report.sections.append(("missing_observation", missing_observation_experiment()))
    report.sections.append(("model_errors", model_errors_experiment()))
    report.sections.append(("runtime", runtime_experiment()))
    report.sections.append(("figures", figure_case_studies()))
    return report


if __name__ == "__main__":
    print(run_all().to_text())
