"""Serving-layer performance harness: delta recompiles and sharding.

Two measurements, both persisted into ``BENCH_scaling.json`` by
``benchmarks/run_perf_harness.py`` so the perf trajectory stays
tracked:

- :func:`delta_vs_full` — edit one track of an ``n``-track scene and
  compare a :class:`~repro.serving.session.SceneSession` delta
  recompile (one-track segment compile + array splice) against the
  from-scratch :func:`~repro.core.compile.compile_scene`. The ISSUE-2
  acceptance floor (≥5× at ≥25 tracks) is asserted by
  ``benchmarks/bench_delta_recompile.py`` on top of this report.
- :func:`sharding_report` — rank a batch of scenes through the
  in-process thread path and through
  :class:`~repro.serving.sharded.ShardedRanker` process pools of
  increasing width, recording throughput and checking the rankings are
  **byte-identical** across all paths.
- :func:`remote_report` — audit the same batch through the ``remote``
  backend against 1..N real TCP protocol workers
  (:class:`repro.serving.TcpWorker`), recording distributed throughput
  vs the inline reference and checking byte-identity once more — the
  cross-machine analogue of the sharding comparison.
- :func:`standing_report` — stream an edit sequence into a session
  with a :class:`~repro.serving.standing.StandingAudit` subscribed and
  compare the amortized per-edit top-k maintenance cost against the
  spliced full rescore (``session.rank``) on the identical state,
  byte-identity checked per edit. The ISSUE-6 floor (≥5× at ≥100
  tracks) is asserted by ``benchmarks/bench_standing_audit.py``.

Timings use best-of-``repeats`` like :mod:`repro.eval.perf`; model
fitting and grid warmup are excluded (one-time offline preparation).
"""

from __future__ import annotations

import struct
import time
from typing import Sequence

from repro.core import MissingTrackFinder
from repro.core.compile import compile_scene

__all__ = [
    "available_cpus",
    "delta_vs_full",
    "remote_report",
    "sharding_report",
    "standing_report",
    "render_serving_report",
]


def available_cpus() -> int:
    """CPUs this process may run on (affinity-aware where the OS has
    the concept; macOS/Windows fall back to the machine count)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _warm_finder():
    from repro.datasets import SYNTHETIC_INTERNAL
    from repro.eval import get_dataset

    dataset = get_dataset(SYNTHETIC_INTERNAL)
    finder = MissingTrackFinder().fit(dataset.train_scenes)
    finder.fixy.warmup_fast_eval()
    return finder.fixy


def _build_scene(n_objects: int, seed: int):
    from repro.eval.perf import _build_scene as build

    return build(n_objects, seed)


def _ranking_signature(ranked) -> list[tuple]:
    """Bit-exact fingerprint of a ranking (scores as raw float64 bytes)."""
    return [
        (s.scene_id, s.track_id, s.n_factors, struct.pack("<d", s.score))
        for s in ranked
    ]


# ----------------------------------------------------------------------
def delta_vs_full(
    n_tracks: int = 25,
    repeats: int = 5,
    fixy=None,
) -> dict:
    """Time editing 1 of ``n_tracks`` tracks: session delta vs full compile.

    Each repeat replaces one observation of the first track (a fresh
    jittered box, so every repeat really recompiles) and then forces
    the spliced compiled view; the full-compile timing recompiles the
    identical post-edit scene from scratch. Returns a JSON-ready dict
    with best-of-``repeats`` millisecond timings and the speedup.
    """
    from repro.core.model import Observation
    from repro.serving import ReplaceObservation

    fixy = fixy or _warm_finder()
    scene = _build_scene(n_tracks, seed=n_tracks)
    session = fixy.session(scene)
    session.compiled  # initial splice out of the timed region

    target = scene.tracks[0]
    best_delta = float("inf")
    best_full = float("inf")
    for i in range(repeats):
        old = target.observations[0]
        replacement = Observation(
            frame=old.frame,
            box=type(old.box)(
                x=old.box.x + 0.01 * (i + 1),
                y=old.box.y,
                z=old.box.z,
                length=old.box.length,
                width=old.box.width,
                height=old.box.height,
                yaw=old.box.yaw,
            ),
            object_class=old.object_class,
            source=old.source,
            confidence=old.confidence,
        )
        edit = ReplaceObservation(target.track_id, old.obs_id, replacement)

        t0 = time.perf_counter()
        session.apply(edit)
        session.compiled
        t1 = time.perf_counter()
        best_delta = min(best_delta, t1 - t0)

        t0 = time.perf_counter()
        compile_scene(
            scene,
            fixy.features,
            learned=fixy.learned,
            aofs=fixy.aofs,
            vectorized=True,
        )
        t1 = time.perf_counter()
        best_full = min(best_full, t1 - t0)

    session.verify()  # spliced state must still equal the reference
    return {
        "n_tracks": len(scene.tracks),
        "n_observations": len(scene.observations),
        "n_factors": session.compiled.columns.n_factors,
        "repeats": repeats,
        "full_ms": round(1e3 * best_full, 3),
        "delta_ms": round(1e3 * best_delta, 3),
        "speedup": round(best_full / best_delta, 2) if best_delta > 0 else None,
    }


# ----------------------------------------------------------------------
def sharding_report(
    n_scenes: int = 6,
    n_objects: int = 20,
    worker_counts: Sequence[int] = (1, 2),
    repeats: int = 3,
    fixy=None,
) -> dict:
    """Thread-path vs 1..N-process ranking throughput (+ identity check).

    Every path ranks the same scene batch; per-path timing is
    best-of-``repeats`` on a warm pool (workers already initialized and
    caches populated — steady-state serving, not pool spin-up, which is
    reported separately as ``cold_ms``).
    """
    from repro.serving import ShardedRanker

    fixy = fixy or _warm_finder()
    scenes = [
        _build_scene(n_objects, seed=1000 + i) for i in range(n_scenes)
    ]

    def best_of(fn) -> tuple[float, list]:
        best, out = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            ranked = fn()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
            out = ranked
        return best, out

    thread_s, thread_ranked = best_of(lambda: fixy.rank(scenes, "tracks"))
    reference = _ranking_signature(thread_ranked)

    cases = []
    identical = True
    for n_workers in worker_counts:
        with ShardedRanker(fixy, n_workers=n_workers) as ranker:
            t0 = time.perf_counter()
            cold_ranked = ranker.rank_tracks(scenes)
            cold_s = time.perf_counter() - t0
            warm_s, warm_ranked = best_of(lambda: ranker.rank_tracks(scenes))
            stats = ranker.cache_stats()
        match = (
            _ranking_signature(cold_ranked) == reference
            and _ranking_signature(warm_ranked) == reference
        )
        identical &= match
        cases.append(
            {
                "n_workers": n_workers,
                "cold_ms": round(1e3 * cold_s, 3),
                "warm_ms": round(1e3 * warm_s, 3),
                "scenes_per_s": round(n_scenes / warm_s, 2) if warm_s > 0 else None,
                "cache_hits": stats["hits"],
                "cache_misses": stats["misses"],
                "byte_identical": match,
            }
        )
    return {
        "n_scenes": n_scenes,
        "n_objects": n_objects,
        "repeats": repeats,
        "thread_ms": round(1e3 * thread_s, 3),
        "thread_scenes_per_s": round(n_scenes / thread_s, 2) if thread_s > 0 else None,
        "n_ranked": len(thread_ranked),
        "byte_identical": identical,
        "process_cases": cases,
    }


# ----------------------------------------------------------------------
def _wire_stats(result) -> dict:
    """Aggregate per-worker wire counters out of an AuditResult."""
    reports = result.provenance.workers or []
    return {
        "bytes_sent": sum(r.get("bytes_sent", 0) for r in reports),
        "encode_ms": round(
            1e3 * sum(r.get("encode_s", 0.0) for r in reports), 3
        ),
        "scene_cache_hits": sum(
            r.get("scene_cache_hits", 0) for r in reports
        ),
        "scene_cache_misses": sum(
            r.get("scene_cache_misses", 0) for r in reports
        ),
        "wires": sorted({r.get("wire", "?") for r in reports}),
    }


def remote_report(
    n_scenes: int = 6,
    n_objects: int = 20,
    worker_counts: Sequence[int] = (1, 2),
    repeats: int = 3,
    fixy=None,
    wire: str = "auto",
) -> dict:
    """Inline vs 1..N-TCP-worker audit throughput (+ identity check).

    Spawns ``max(worker_counts)`` in-process TCP workers sharing one
    warmed engine, runs the same :class:`repro.api.AuditSpec` through
    the ``inline`` backend and through ``remote`` pools of increasing
    width, and records best-of-``repeats`` wall-clock, scenes/s, a
    byte-identity verdict, and the wire economics per width — bytes on
    the wire (cold vs warm), coordinator encode milliseconds, and
    worker scene-cache hits/misses, which is how the trajectory shows
    the v2 warm path shipping ids instead of bodies. ``wire`` forwards
    to the remote backend (``auto``/``v1``/``v2``).
    """
    from repro.api import Audit, AuditSpec
    from repro.serving.tcp import TcpWorker

    fixy = fixy or _warm_finder()
    scenes = [
        _build_scene(n_objects, seed=2000 + i) for i in range(n_scenes)
    ]
    spec = AuditSpec(kind="tracks")
    workers = [TcpWorker(fixy) for _ in range(max(worker_counts))]

    def best_of(fn) -> tuple[float, list]:
        best, out = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            ranked = fn()
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
            out = ranked
        return best, out

    audit = Audit(spec, fixy=fixy)
    try:
        inline_s, inline_result = best_of(
            lambda: audit.run(scenes=scenes, backend="inline")
        )
        reference = _ranking_signature(inline_result.items)

        cases = []
        identical = True
        for n_workers in worker_counts:
            addresses = [w.address for w in workers[:n_workers]]
            # First call registers the pool (hello round-trips) and
            # ships scene bodies; the warm runs ride the worker-side
            # scene caches (ids only under the v2 wire). The cold/warm
            # split mirrors sharding_report.
            t0 = time.perf_counter()
            cold = audit.run(
                scenes=scenes, backend="remote", workers=addresses,
                wire=wire,
            )
            cold_s = time.perf_counter() - t0
            warm_s, warm = best_of(
                lambda: audit.run(
                    scenes=scenes, backend="remote", workers=addresses,
                    wire=wire,
                )
            )
            match = (
                _ranking_signature(cold.items) == reference
                and _ranking_signature(warm.items) == reference
            )
            identical &= match
            cold_stats = _wire_stats(cold)
            warm_stats = _wire_stats(warm)
            cases.append(
                {
                    "n_workers": n_workers,
                    "cold_ms": round(1e3 * cold_s, 3),
                    "warm_ms": round(1e3 * warm_s, 3),
                    "scenes_per_s": (
                        round(n_scenes / warm_s, 2) if warm_s > 0 else None
                    ),
                    "byte_identical": match,
                    "wire": warm_stats["wires"],
                    "cold_bytes_sent": cold_stats["bytes_sent"],
                    "warm_bytes_sent": warm_stats["bytes_sent"],
                    "encode_ms": warm_stats["encode_ms"],
                    "scene_cache_hits": warm_stats["scene_cache_hits"],
                    "scene_cache_misses": warm_stats["scene_cache_misses"],
                    "partitions": [
                        {"worker": w["worker"], "n_scenes": w["n_scenes"]}
                        for w in (warm.provenance.workers or [])
                    ],
                }
            )
    finally:
        audit.close()
        for worker in workers:
            worker.stop()
    return {
        "n_scenes": n_scenes,
        "n_objects": n_objects,
        "repeats": repeats,
        "wire": wire,
        # Worker scaling is bounded by the machine: on a single-CPU
        # box N workers time-share one core, so warm throughput tops
        # out at parity with 1 worker no matter the wire.
        "n_cpus": available_cpus(),
        "inline_ms": round(1e3 * inline_s, 3),
        "inline_scenes_per_s": (
            round(n_scenes / inline_s, 2) if inline_s > 0 else None
        ),
        "n_ranked": len(inline_result.items),
        "byte_identical": identical,
        "worker_cases": cases,
    }


# ----------------------------------------------------------------------
def standing_report(
    n_tracks: int = 100,
    n_edits: int = 40,
    top_k: int = 10,
    fixy=None,
) -> dict:
    """Incremental standing-audit top-k maintenance vs full rescore.

    Opens one :class:`~repro.serving.session.SceneSession` over an
    ``n_tracks`` scene, subscribes a top-``top_k`` standing audit, then
    streams ``n_edits`` single-observation edits (jittered boxes,
    cycling through the tracks). Per edit it records:

    - the apply cost (delta recompile **plus** the standing audit's
      incremental maintenance, which rescores only the edited track),
    - the maintenance share alone (from
      :class:`~repro.serving.standing.StandingStats`), and
    - the full-rescore reference on the identical post-edit state
      (``session.rank`` — splice, scorer rebuild, score + sort every
      track), checked **byte-identical** against the standing top-k.

    The ISSUE-6 acceptance floor (amortized per-edit maintenance ≥5×
    faster than full rescore at ≥100 tracks, byte-identical results)
    is asserted by ``benchmarks/bench_standing_audit.py`` on top of
    this report. Timings are totals over all edits (amortized ms/edit),
    not best-of: incremental maintenance is a steady-state claim, so
    the whole edit stream is the measurement.
    """
    from repro.api import AuditSpec
    from repro.core.model import Observation
    from repro.serving import ReplaceObservation

    fixy = fixy or _warm_finder()
    scene = _build_scene(n_tracks, seed=n_tracks)
    session = fixy.session(scene)
    session.compiled  # initial splice out of the timed region

    audit = session.subscribe(AuditSpec(kind="tracks", top_k=top_k))
    audit.results()  # prime the cache; stats below measure edits only
    maintain_base_s = audit.stats.maintain_s
    rescored_base = audit.stats.tracks_rescored

    total_apply = 0.0
    total_query = 0.0
    total_full = 0.0
    identical = True
    for i in range(n_edits):
        target = scene.tracks[i % len(scene.tracks)]
        old = target.observations[0]
        replacement = Observation(
            frame=old.frame,
            box=type(old.box)(
                x=old.box.x + 0.01 * (i + 1),
                y=old.box.y,
                z=old.box.z,
                length=old.box.length,
                width=old.box.width,
                height=old.box.height,
                yaw=old.box.yaw,
            ),
            object_class=old.object_class,
            source=old.source,
            confidence=old.confidence,
        )
        edit = ReplaceObservation(target.track_id, old.obs_id, replacement)

        t0 = time.perf_counter()
        session.apply(edit)
        total_apply += time.perf_counter() - t0

        t0 = time.perf_counter()
        incremental = audit.results()
        total_query += time.perf_counter() - t0

        t0 = time.perf_counter()
        full = session.rank("tracks", None, top_k=top_k)
        total_full += time.perf_counter() - t0

        identical &= (
            _ranking_signature(incremental) == _ranking_signature(full)
        )

    audit.verify()  # standing top-k must still equal the reference
    session.verify()
    maintain_s = audit.stats.maintain_s - maintain_base_s
    rescored = audit.stats.tracks_rescored - rescored_base
    return {
        "n_tracks": len(scene.tracks),
        "n_observations": len(scene.observations),
        "n_edits": n_edits,
        "top_k": top_k,
        "tracks_rescored_per_edit": round(rescored / n_edits, 2),
        "apply_ms_per_edit": round(1e3 * total_apply / n_edits, 3),
        "query_ms_per_edit": round(1e3 * total_query / n_edits, 4),
        "maintain_ms_per_edit": round(1e3 * maintain_s / n_edits, 4),
        "full_rescore_ms_per_edit": round(1e3 * total_full / n_edits, 3),
        "speedup": (
            round(total_full / maintain_s, 2) if maintain_s > 0 else None
        ),
        "end_to_end_speedup": (
            round(
                (total_apply + total_full) / (total_apply + total_query), 2
            )
            if total_apply + total_query > 0
            else None
        ),
        "byte_identical": identical,
        "heap_refills": audit.stats.heap_refills,
        "heap_demotions": audit.stats.heap_demotions,
    }


# ----------------------------------------------------------------------
def render_serving_report(
    delta: dict | None,
    sharding: dict | None,
    remote: dict | None = None,
    standing: dict | None = None,
) -> str:
    """Human-readable rendering of the serving reports."""
    lines = ["Serving layer: delta recompilation and process sharding"]
    if delta is not None:
        lines.append(
            f"  delta recompile (1 of {delta['n_tracks']} tracks edited): "
            f"full {delta['full_ms']:.1f} ms vs delta {delta['delta_ms']:.1f} ms "
            f"=> {delta['speedup']:.1f}x"
        )
    if sharding is not None:
        lines.append(
            f"  ranking {sharding['n_scenes']} scenes "
            f"({sharding['n_objects']} objects each): thread "
            f"{sharding['thread_ms']:.1f} ms "
            f"({sharding['thread_scenes_per_s']:.1f} scenes/s), "
            f"byte-identical={sharding['byte_identical']}"
        )
        for case in sharding["process_cases"]:
            lines.append(
                f"    {case['n_workers']} process(es): cold "
                f"{case['cold_ms']:.1f} ms, warm {case['warm_ms']:.1f} ms "
                f"({case['scenes_per_s']:.1f} scenes/s), cache "
                f"{case['cache_hits']}h/{case['cache_misses']}m"
            )
    if remote is not None:
        lines.append(
            f"  remote audit of {remote['n_scenes']} scenes "
            f"({remote['n_objects']} objects each): inline "
            f"{remote['inline_ms']:.1f} ms "
            f"({remote['inline_scenes_per_s']:.1f} scenes/s), "
            f"byte-identical={remote['byte_identical']}"
        )
        for case in remote["worker_cases"]:
            line = (
                f"    {case['n_workers']} TCP worker(s): cold "
                f"{case['cold_ms']:.1f} ms, warm {case['warm_ms']:.1f} ms "
                f"({case['scenes_per_s']:.1f} scenes/s)"
            )
            if "warm_bytes_sent" in case:
                line += (
                    f", wire {'+'.join(case['wire'])}: "
                    f"{case['cold_bytes_sent']}B cold -> "
                    f"{case['warm_bytes_sent']}B warm, "
                    f"cache {case['scene_cache_hits']}h/"
                    f"{case['scene_cache_misses']}m"
                )
            lines.append(line)
    if standing is not None:
        lines.append(
            f"  standing audit ({standing['n_edits']} edits over "
            f"{standing['n_tracks']} tracks, top-{standing['top_k']}): "
            f"maintain {standing['maintain_ms_per_edit']:.2f} ms/edit vs "
            f"full rescore {standing['full_rescore_ms_per_edit']:.2f} "
            f"ms/edit => {standing['speedup']:.1f}x "
            f"(end-to-end {standing['end_to_end_speedup']:.1f}x, "
            f"{standing['tracks_rescored_per_edit']:.1f} tracks "
            f"rescored/edit), "
            f"byte-identical={standing['byte_identical']}"
        )
    return "\n".join(lines)
