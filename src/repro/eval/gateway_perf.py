"""Async-gateway performance harness: sustained load, shedding, coalescing.

The acceptance floors the async serving front
(:mod:`repro.serving.gateway`) commits to, measured in one report
(``benchmarks/bench_gateway.py`` asserts them, the perf harness
persists them to ``BENCH_scaling.json`` under ``serving.gateway``):

- **sustained**: ≥1k concurrent closed-loop clients multiplexed on the
  gateway's single event loop, every request answered (no hangs, no
  silent drops) with a bounded p99;
- **shed**: with a tiny admission window (``max_inflight=1``, small
  ``max_queue``) a concurrent burst must shed the overflow with the
  *typed* ``overloaded`` protocol code — every request still gets a
  response;
- **coalesce**: a concurrent burst of identical audits against a
  cold scene must share one compile — ≥50% of the burst attaches to
  the in-flight future (``hit_ratio``) and all responses carry the
  identical body;
- **byte identity**: a mixed op sequence through the gateway matches
  the threaded TCP front byte-for-byte (timings stripped — they are
  wall-clock, not payload).

The load generator is itself asyncio (one client coroutine per
connection, closed loop: write a request line, await the response
line), so a single bench process drives thousands of concurrent
connections without a thread per client.

Run via the harness (``python benchmarks/run_perf_harness.py``) or
standalone::

    PYTHONPATH=src python -c "
    from repro.eval.gateway_perf import gateway_report, render_gateway_report
    print(render_gateway_report(gateway_report(n_clients=128)))"
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.eval.serving_perf import _warm_finder

__all__ = ["gateway_report", "render_gateway_report"]

#: Cap on simultaneous *connect* attempts — the listener's accept
#: backlog is finite, and a 1k-SYN stampede would push some clients
#: into kernel SYN-retransmit (seconds), polluting latency with
#: connect noise instead of serving behavior.
_CONNECT_WINDOW = 64


def _build_scene(n_objects: int, seed: int):
    from repro.eval.perf import _build_scene as build

    return build(n_objects, seed)


def _audit_line(spec_dict: dict, fingerprint: str, **extra) -> bytes:
    request = {
        "v": 2,
        "op": "audit",
        "spec": spec_dict,
        "scene_hashes": [fingerprint],
        **extra,
    }
    return json.dumps(request).encode("utf-8") + b"\n"


async def _client(
    address: tuple[str, int],
    lines: list[bytes],
    connect_gate: asyncio.Semaphore,
    results: list,
) -> None:
    """One closed-loop client: connect, then request → response → next."""
    host, port = address
    async with connect_gate:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        for line in lines:
            t0 = time.perf_counter()
            writer.write(line)
            await writer.drain()
            raw = await reader.readline()
            latency = time.perf_counter() - t0
            if not raw:
                results.append(("closed", latency, None))
                return
            response = json.loads(raw)
            if response.get("ok"):
                results.append(("ok", latency, response))
            else:
                error = response.get("error")
                code = error.get("code") if isinstance(error, dict) else None
                kind = "shed" if code == "overloaded" else "error"
                results.append((kind, latency, response))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _drive(address_str: str, per_client_lines: list[list[bytes]]):
    host, port_str = address_str.rsplit(":", 1)
    address = (host, int(port_str))
    gate = asyncio.Semaphore(_CONNECT_WINDOW)
    results: list = []
    await asyncio.gather(
        *(_client(address, lines, gate, results) for lines in per_client_lines)
    )
    return results


def _run_load(address: str, per_client_lines: list[list[bytes]]) -> dict:
    """Drive the client fleet, fold outcomes + latency percentiles."""
    t0 = time.perf_counter()
    results = asyncio.run(_drive(address, per_client_lines))
    wall_s = time.perf_counter() - t0
    latencies = sorted(latency for _kind, latency, _r in results)

    def pct(q: float) -> float | None:
        if not latencies:
            return None
        index = min(len(latencies) - 1, int(q * (len(latencies) - 1)))
        return round(1e3 * latencies[index], 3)

    counts = {"ok": 0, "shed": 0, "error": 0, "closed": 0}
    for kind, _latency, _response in results:
        counts[kind] += 1
    total_sent = sum(len(lines) for lines in per_client_lines)
    answered = counts["ok"] + counts["shed"] + counts["error"]
    return {
        "requests_sent": total_sent,
        "answered": answered,
        "ok": counts["ok"],
        "shed": counts["shed"],
        "errors": counts["error"],
        "connections_dropped": counts["closed"],
        "all_answered": answered == total_sent and counts["closed"] == 0,
        "wall_s": round(wall_s, 4),
        "req_per_s": round(answered / wall_s, 1) if wall_s > 0 else None,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "_responses": results,
    }


def _strip_volatile(obj):
    """Drop wall-clock payload fields before byte-identity comparison."""
    if isinstance(obj, dict):
        return {
            key: _strip_volatile(value)
            for key, value in obj.items()
            if key not in ("timings", "generated_at", "uptime_s")
        }
    if isinstance(obj, (list, tuple)):
        return [_strip_volatile(value) for value in obj]
    return obj


def gateway_report(
    n_clients: int = 1000,
    requests_per_client: int = 2,
    n_scenes: int = 8,
    n_objects: int = 8,
    shed_burst: int = 32,
    shed_queue: int = 4,
    coalesce_burst: int = 24,
    max_inflight: int = 4,
    fixy=None,
    db_dir: str | None = None,
) -> dict:
    """Measure the asyncio gateway: sustained, shed, coalesce, identity.

    Scenes live in a throwaway warehouse and clients audit by content
    hash (``scene_hashes``), so a thousand clients cost a thousand
    sockets — not a thousand scene bodies on the wire. Each phase gets
    a fresh :class:`~repro.serving.gateway.AsyncGateway` sized for what
    it probes; all share one warmed engine. Returns a JSON-ready dict;
    the floors live in ``benchmarks/bench_gateway.py``.
    """
    from repro.api import AuditSpec
    from repro.serving.gateway import _COALESCE, GatewayWorker
    from repro.serving.service import StreamingService
    from repro.warehouse import SceneWarehouse

    fixy = fixy or _warm_finder()
    scenes = [_build_scene(n_objects, seed=7000 + i) for i in range(n_scenes)]
    spec_dict = AuditSpec(kind="tracks", top_k=5).to_dict()

    report: dict = {
        "n_clients": n_clients,
        "requests_per_client": requests_per_client,
        "n_scenes": n_scenes,
        "n_objects": n_objects,
        "max_inflight": max_inflight,
    }
    with tempfile.TemporaryDirectory(dir=db_dir) as tmp:
        db = str(Path(tmp) / "gateway.db")
        with SceneWarehouse(db) as warehouse:
            fingerprints = [warehouse.ingest(scene) for scene in scenes]
            # One extra scene the sustained warmup never touches — the
            # coalesce phase needs a *cold* compile slow enough for the
            # burst to pile onto.
            cold_fp = warehouse.ingest(
                _build_scene(max(n_objects * 4, 24), seed=7999)
            )

        def fresh_service() -> StreamingService:
            return StreamingService(
                fixy, warehouse=db, scene_cache=n_scenes + 2
            )

        # -- sustained --------------------------------------------------
        with GatewayWorker(
            service=fresh_service(),
            max_inflight=max_inflight,
            max_queue=n_clients * requests_per_client + 1,
            client_budget=requests_per_client + 1,
        ) as worker:
            # Warm every scene's compile once, outside the timed window:
            # sustained measures serving, not first-touch compilation.
            warm = _run_load(
                worker.address,
                [[_audit_line(spec_dict, fp)] for fp in fingerprints],
            )
            assert warm["ok"] == n_scenes, warm
            load = _run_load(
                worker.address,
                [
                    [
                        _audit_line(
                            spec_dict, fingerprints[client % n_scenes]
                        )
                        for _ in range(requests_per_client)
                    ]
                    for client in range(n_clients)
                ],
            )
            load.pop("_responses")
            report["sustained"] = load

        # -- shed -------------------------------------------------------
        # One executor thread + a tiny queue; the burst arrives faster
        # than one worker drains, so admission must shed the overflow —
        # with a typed response, not a stall. Distinct top_k per request
        # keeps the coalescer out of this phase's way.
        with GatewayWorker(
            service=fresh_service(),
            max_inflight=1,
            max_queue=shed_queue,
            client_budget=shed_burst + 1,
        ) as worker:
            shed = _run_load(
                worker.address,
                [
                    [
                        _audit_line(
                            dict(spec_dict, top_k=2 + client),
                            fingerprints[client % n_scenes],
                        )
                    ]
                    for client in range(shed_burst)
                ],
            )
            responses = shed.pop("_responses")
            typed = all(
                isinstance(r.get("error"), dict)
                and r["error"].get("code") == "overloaded"
                and r["error"].get("details", {}).get("reason")
                for kind, _latency, r in responses
                if kind == "shed"
            )
            report["shed"] = {
                "burst": shed_burst,
                "max_queue": shed_queue,
                **{k: v for k, v in shed.items() if not k.startswith("_")},
                "typed_overloaded": typed and shed["shed"] > 0,
            }

        # -- coalesce ---------------------------------------------------
        # Identical audits of a scene nobody compiled yet: the first
        # becomes the lead, the rest of the burst must attach to its
        # in-flight future instead of compiling again.
        leads_before = _COALESCE.value(outcome="lead")
        hits_before = _COALESCE.value(outcome="hit")
        with GatewayWorker(
            service=fresh_service(),
            max_inflight=1,
            max_queue=coalesce_burst + 1,
            client_budget=2,
        ) as worker:
            coalesce = _run_load(
                worker.address,
                [
                    [_audit_line(spec_dict, cold_fp)]
                    for _ in range(coalesce_burst)
                ],
            )
            responses = coalesce.pop("_responses")
            bodies = {
                json.dumps(_strip_volatile(r), sort_keys=True)
                for kind, _latency, r in responses
                if kind == "ok"
            }
            leads = _COALESCE.value(outcome="lead") - leads_before
            hits = _COALESCE.value(outcome="hit") - hits_before
            total = leads + hits
            report["coalesce"] = {
                "burst": coalesce_burst,
                "ok": coalesce["ok"],
                "leads": leads,
                "hits": hits,
                "hit_ratio": round(hits / total, 3) if total else None,
                "identical_bodies": len(bodies) == 1 and coalesce["ok"] > 0,
            }

        # -- byte identity ---------------------------------------------
        report["byte_identity"] = _byte_identity(
            fixy, db, spec_dict, fingerprints
        )
    return report


def _byte_identity(fixy, db: str, spec_dict: dict, fingerprints) -> dict:
    """Same mixed op sequence via gateway and threaded front: identical?

    Each front gets its own fresh service (same model, same warehouse,
    empty session store and scene cache) so state-dependent payloads —
    session ids, cache hit counts — line up deterministically. Only
    wall-clock fields are stripped before comparison.
    """
    from repro.api.client import AuditClient
    from repro.serving.gateway import GatewayWorker
    from repro.serving.service import StreamingService
    from repro.serving.tcp import TcpWorker

    def run_ops(address: str) -> list:
        responses = []
        with AuditClient.connect(address) as client:

            def call(op, **fields):
                try:
                    responses.append(("ok", client.request(op, **fields)))
                except Exception as exc:  # typed errors are payload too
                    responses.append(("err", str(exc)))

            call("hello")
            call("audit", spec=spec_dict, scene_hashes=[fingerprints[0]])
            call("open", scene=_build_scene(6, seed=8101).to_dict())
            session_id = responses[-1][1]["session_id"]
            call("rank", session_id=session_id, kind="tracks", top_k=3)
            call(
                "audit",
                spec=spec_dict,
                scene_hashes=[fingerprints[1 % len(fingerprints)]],
            )
            call("close", session_id=session_id)
            call("stats")
        return _strip_volatile([r for r in responses])

    def fresh_service():
        return StreamingService(fixy, warehouse=db, scene_cache=8)

    with GatewayWorker(service=fresh_service(), max_inflight=2) as gateway:
        via_gateway = run_ops(gateway.address)
    threaded = TcpWorker(service=fresh_service())
    try:
        via_threads = run_ops(threaded.address)
    finally:
        threaded.stop()
    return {
        "ops": len(via_gateway),
        "byte_identical": via_gateway == via_threads,
    }


def render_gateway_report(report: dict) -> str:
    sustained = report["sustained"]
    shed = report["shed"]
    coalesce = report["coalesce"]
    identity = report["byte_identity"]
    return "\n".join(
        [
            f"async gateway ({report['n_clients']} clients × "
            f"{report['requests_per_client']} requests, "
            f"max_inflight {report['max_inflight']}):",
            f"  sustained: {sustained['req_per_s']} req/s over "
            f"{sustained['wall_s']*1e3:.0f} ms, "
            f"p50 {sustained['p50_ms']} ms / p99 {sustained['p99_ms']} ms, "
            f"{sustained['answered']}/{sustained['requests_sent']} answered "
            f"{'OK' if sustained['all_answered'] else 'DROPPED'}",
            f"  shed: burst {shed['burst']} vs queue {shed['max_queue']} → "
            f"{shed['ok']} served + {shed['shed']} shed "
            f"(typed overloaded: {shed['typed_overloaded']})",
            f"  coalesce: burst {coalesce['burst']} → {coalesce['leads']:g} "
            f"compiles + {coalesce['hits']:g} attached "
            f"(hit ratio {coalesce['hit_ratio']}, identical bodies "
            f"{coalesce['identical_bodies']})",
            f"  byte-identical to threaded front: "
            f"{identity['byte_identical']} ({identity['ops']} ops)",
        ]
    )
