"""Warehouse perf measurements: out-of-core residency + warm sidecars.

The acceptance floors ISSUE 8 commits the warehouse to, measured in one
report (``benchmarks/bench_warehouse.py`` asserts them, the perf harness
persists them to ``BENCH_scaling.json``):

- **out-of-core bound**: auditing a corpus ≥4× the resident-batch
  budget must never hold more than ``batch`` unpacked scenes alive at
  once (``peak_resident_scenes``, measured with weakrefs inside the
  inline streaming executor);
- **warm sidecars pay**: a second audit of the same corpus with the
  same model must restore ≥90% of its compiled scenes from the
  compiled-columns sidecar (``warm_skip_ratio``) and finish measurably
  faster than the cold run;
- **byte identity**: cold, warm, and the all-in-memory reference audit
  produce bit-identical rankings.

Run via the harness (``python benchmarks/run_perf_harness.py``) or
standalone::

    PYTHONPATH=src python -c "
    from repro.eval.warehouse_perf import render_warehouse_report, warehouse_report
    print(render_warehouse_report(warehouse_report()))"
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.eval.serving_perf import _ranking_signature, _warm_finder

__all__ = ["build_corpus_scene", "render_warehouse_report", "warehouse_report"]


def build_corpus_scene(n_objects: int, index: int):
    """One synthetic corpus scene with a distinct scene_id per index."""
    from repro.datagen import SceneConfig, SceneGenerator
    from repro.datasets import SYNTHETIC_INTERNAL, build_labeled_scene

    config = SceneConfig(n_objects_range=(n_objects, n_objects))
    world = SceneGenerator(config).generate(f"wh-{index:03d}", seed=index)
    labeled = build_labeled_scene(
        world, SYNTHETIC_INTERNAL.vendor, SYNTHETIC_INTERNAL.detector, seed=1
    )
    return labeled.scene


def warehouse_report(
    corpus_scenes: int = 16,
    batch: int = 4,
    n_objects: int = 12,
    top_k: int = 10,
    fixy=None,
    db_dir: str | None = None,
) -> dict:
    """Ingest a corpus, audit it out-of-core cold then warm, check bounds.

    The corpus is ``corpus_scenes`` synthetic scenes (floored at 4× the
    ``batch`` budget so the out-of-core claim is non-trivial), ingested
    into a throwaway warehouse. Three audits run: cold (empty sidecar
    table — every scene compiles), warm (sidecars restore), and the
    in-memory reference (all scenes resident, the plain inline backend).
    Returns a JSON-ready dict; see the module docstring for the floors.
    """
    from repro.api import Audit, AuditSpec, SceneSource
    from repro.warehouse import SceneWarehouse

    corpus_scenes = max(corpus_scenes, 4 * batch)
    fixy = fixy or _warm_finder()
    scenes = [build_corpus_scene(n_objects, i) for i in range(corpus_scenes)]

    with tempfile.TemporaryDirectory(dir=db_dir) as tmp:
        db = str(Path(tmp) / "bench.db")
        t0 = time.perf_counter()
        with SceneWarehouse(db) as warehouse:
            for scene in scenes:
                warehouse.ingest(scene, tags=("bench",))
            blob_bytes = warehouse.stats()["blob_bytes"]
        ingest_s = time.perf_counter() - t0

        spec = AuditSpec(
            kind="tracks",
            top_k=top_k,
            scenes=SceneSource(warehouse=db, batch=batch),
        )

        def timed_run():
            start = time.perf_counter()
            result = Audit(spec, fixy=fixy).run()
            return result, time.perf_counter() - start

        cold, cold_s = timed_run()
        warm, warm_s = timed_run()

    reference = Audit(
        AuditSpec(kind="tracks", top_k=top_k), fixy=fixy
    ).run(scenes=scenes)

    cold_stream = cold.provenance.stream
    warm_stream = warm.provenance.stream
    reference_signature = _ranking_signature(reference.items)
    warm_compiles = warm_stream["compile_warm"]
    warm_total = warm_compiles + warm_stream["compile_cold"]
    return {
        "corpus_scenes": corpus_scenes,
        "n_objects": n_objects,
        "batch": batch,
        "top_k": top_k,
        "blob_bytes": blob_bytes,
        "ingest_s": round(ingest_s, 4),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "peak_resident_scenes": cold_stream["peak_resident_scenes"],
        "peak_resident_warm": warm_stream["peak_resident_scenes"],
        "compile_cold": cold_stream["compile_cold"],
        "compile_warm": warm_compiles,
        "warm_skip_ratio": (
            round(warm_compiles / warm_total, 3) if warm_total else None
        ),
        "out_of_core_bound": (
            cold_stream["peak_resident_scenes"] <= batch
            and warm_stream["peak_resident_scenes"] <= batch
        ),
        "byte_identical": (
            _ranking_signature(cold.items) == reference_signature
            and _ranking_signature(warm.items) == reference_signature
        ),
    }


def render_warehouse_report(report: dict) -> str:
    lines = [
        "warehouse out-of-core audit "
        f"({report['corpus_scenes']} scenes × {report['n_objects']} objects, "
        f"batch budget {report['batch']}):",
        f"  ingest: {report['ingest_s']*1e3:.0f} ms "
        f"({report['blob_bytes']/1e6:.2f} MB of blobs)",
        f"  cold audit: {report['cold_s']*1e3:.0f} ms "
        f"({report['compile_cold']} compiles)",
        f"  warm audit: {report['warm_s']*1e3:.0f} ms "
        f"({report['compile_warm']} sidecar restores, "
        f"skip ratio {report['warm_skip_ratio']}, "
        f"speedup {report['warm_speedup']}x)",
        f"  peak resident scenes: {report['peak_resident_scenes']} "
        f"(budget {report['batch']}) "
        f"{'OK' if report['out_of_core_bound'] else 'OVER BUDGET'}",
        f"  byte-identical to in-memory: {report['byte_identical']}",
    ]
    return "\n".join(lines)
