"""Ranking metrics used by the evaluation (§8).

The paper's headline metric is precision at the top-k of a ranked list of
potential errors, audited item by item: "we manually checked the top 10
potential errors ... (in some cases, fewer than 10 potential errors were
flagged; we use the maximum number in these cases)". Our auditing is
automatic (the simulators record every injected error), but the metric
definitions match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "precision_at_k",
    "recall_of_set",
    "mean_or_nan",
    "PrecisionSummary",
    "summarize_precisions",
]


def precision_at_k(hits: Sequence[bool], k: int) -> float:
    """Fraction of true errors among the top ``min(k, len(hits))`` items.

    ``hits`` is the audited ranked list (True = real error), best first.
    Following the paper, when fewer than ``k`` items were flagged the
    denominator is the number flagged. An empty list yields 0.0.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top = list(hits[:k])
    if not top:
        return 0.0
    return sum(top) / len(top)


def recall_of_set(found: Iterable[str], total: Iterable[str]) -> float:
    """Fraction of ground-truth error identities that were found.

    Args:
        found: Identities (e.g. ground-truth object ids) the method
            surfaced.
        total: All ground-truth error identities present.
    """
    total_set = set(total)
    if not total_set:
        raise ValueError("recall undefined with no ground-truth errors")
    return len(set(found) & total_set) / len(total_set)


def mean_or_nan(values: Sequence[float]) -> float:
    """Mean of ``values``; NaN for an empty sequence."""
    return float(np.mean(values)) if len(values) else float("nan")


@dataclass(frozen=True)
class PrecisionSummary:
    """Aggregated precision@k for one method on one dataset."""

    method: str
    dataset: str
    precision_at_10: float
    precision_at_5: float
    precision_at_1: float
    n_scenes: int

    def as_row(self) -> list:
        return [
            self.method,
            self.dataset,
            f"{self.precision_at_10:.0%}",
            f"{self.precision_at_5:.0%}",
            f"{self.precision_at_1:.0%}",
        ]


def summarize_precisions(
    method: str,
    dataset: str,
    per_scene_hits: list[list[bool]],
) -> PrecisionSummary:
    """Average per-scene precision@{10,5,1} into one summary row.

    Scenes where the method flagged nothing contribute precision 0 — the
    method had errors to find and surfaced none.
    """
    p10 = mean_or_nan([precision_at_k(h, 10) for h in per_scene_hits])
    p5 = mean_or_nan([precision_at_k(h, 5) for h in per_scene_hits])
    p1 = mean_or_nan([precision_at_k(h, 1) for h in per_scene_hits])
    return PrecisionSummary(
        method=method,
        dataset=dataset,
        precision_at_10=p10,
        precision_at_5=p5,
        precision_at_1=p1,
        n_scenes=len(per_scene_hits),
    )
