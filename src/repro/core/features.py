"""Feature base classes: the π mapping of the LOA DSL.

The paper's four feature types (§5.1) map to four base classes here:

1. :class:`ObservationFeature` — over single observations ω (e.g. box
   volume);
2. :class:`BundleFeature` — over observation bundles β (e.g. class
   agreement, model-only selection);
3. :class:`TransitionFeature` — over adjacent bundles (β_i, β_{i+1})
   within a track (e.g. instantaneous velocity);
4. :class:`TrackFeature` — over entire tracks τ (e.g. observation count).

A feature computes a scalar (or small vector) value for an item; a
*learned* feature gets a distribution fitted over historical values
(:mod:`repro.core.learning`), while a *manual* feature supplies its own
potential function (e.g. the distance-to-AV severity prior).

Features may be **class-conditional** (Table 2 learns volume and velocity
per object class): :meth:`Feature.group_key` returns the conditioning key.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.model import Observation, ObservationBundle, Track
from repro.geometry import Pose2D

__all__ = [
    "FeatureContext",
    "Feature",
    "ObservationFeature",
    "BundleFeature",
    "TransitionFeature",
    "TrackFeature",
    "FeatureKind",
]

FeatureKind = str  # "observation" | "bundle" | "transition" | "track"


@dataclass(frozen=True)
class FeatureContext:
    """Per-scene context threaded through feature computation.

    Attributes:
        dt: Seconds between adjacent frames.
        ego_poses: Optional ego pose per frame index (needed by features
            like distance-to-AV; scenes without ego data simply cannot
            use those features).
    """

    dt: float
    ego_poses: dict[int, Pose2D] | None = None

    def ego_pose_at(self, frame: int) -> Pose2D:
        if self.ego_poses is None:
            raise ValueError(
                "this scene has no ego poses; attach them via "
                "Scene.metadata['ego_poses'] or FeatureContext(ego_poses=...)"
            )
        try:
            return self.ego_poses[frame]
        except KeyError:
            raise KeyError(f"no ego pose recorded for frame {frame}") from None

    @staticmethod
    def from_scene(scene) -> "FeatureContext":
        """Build a context from a :class:`repro.core.model.Scene`.

        Reads ``scene.metadata["ego_poses"]`` when present — either a dict
        ``frame -> Pose2D`` or a list indexed by frame.
        """
        raw = scene.metadata.get("ego_poses")
        ego = None
        if raw is not None:
            if isinstance(raw, dict):
                ego = dict(raw)
            else:
                ego = {i: p for i, p in enumerate(raw)}
        return FeatureContext(dt=scene.dt, ego_poses=ego)


class Feature(ABC):
    """One user-specified feature (π entry).

    Attributes:
        name: Unique identifier (also the factor label in compiled graphs).
        kind: Which OBT element the feature applies to.
        learnable: Whether a distribution is fitted from historical data
            (True) or the feature supplies a manual potential (False).
        fitter: Name of the fitting function in
            :mod:`repro.distributions.fitting` (learned features only).
        class_conditional: Whether to fit one distribution per object
            class.
    """

    name: str
    kind: FeatureKind
    learnable: bool = True
    fitter: str = "kde"
    class_conditional: bool = False
    #: Whether :meth:`columnar_values` implements this feature's batch
    #: extraction over an ObservationTable. Setting it also promises the
    #: default :meth:`group_key` semantics (or a matching
    #: :meth:`columnar_group_keys` override).
    supports_columnar: bool = False

    # ------------------------------------------------------------------
    @abstractmethod
    def compute(self, item, context: FeatureContext):
        """Feature value for ``item``; ``None`` when not applicable.

        ``item`` is an Observation / ObservationBundle / (bundle, bundle)
        pair / Track according to :attr:`kind`.
        """

    def evaluate_batch(self, items, context: FeatureContext) -> list:
        """Feature values for many items, aligned with ``items``.

        The default loops over :meth:`compute`; features whose value is
        derivable from array math can override this to vectorize the
        extraction itself. Entries are ``None`` where the feature does not
        apply — callers (:class:`repro.core.columnar.FeatureMatrix`) drop
        those rows before batch density evaluation.
        """
        return [self.compute(item, context) for item in items]

    def columnar_values(self, table, context: FeatureContext) -> np.ndarray:
        """Array extraction over an ObservationTable (fast path).

        Only consulted when :attr:`supports_columnar` is True. Must
        return one float row per item of this feature's kind, in the
        table's global (track-major) item order, with ``NaN`` marking
        items the feature does not apply to — the array analogue of
        :meth:`compute` returning ``None``. Implementations must match
        :meth:`compute` to floating-point round-off; the scalar compile
        path is the executable reference they are property-tested
        against.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares supports_columnar but does "
            "not implement columnar_values"
        )

    def columnar_group_keys(self, table, context: FeatureContext) -> list:
        """Conditioning keys per item for the columnar fast path.

        Default: the table's per-kind item classes when
        :attr:`class_conditional` is set (identical to what
        :meth:`group_key` returns item by item), else all-``None``.
        Features overriding :meth:`group_key` must override this too if
        they claim :attr:`supports_columnar`.
        """
        if not self.class_conditional:
            return [None] * table.kind_count(self.kind)
        return table.item_classes(self.kind)

    def manual_potential_batch(self, values) -> np.ndarray:
        """Batched :meth:`manual_potential` (manual features only).

        ``values`` is a sequence of non-``None`` feature values; returns
        one potential per value. The default loops; manual features with
        arithmetic potentials should override with array math.
        """
        return np.asarray(
            [self.manual_potential(value) for value in values], dtype=float
        )

    def group_key(self, item, context: FeatureContext) -> str | None:
        """Conditioning key for class-conditional features.

        The default implementation returns the item's (majority) object
        class when :attr:`class_conditional` is set, else ``None``.
        """
        if not self.class_conditional:
            return None
        return self._item_class(item)

    def manual_potential(self, value) -> float:
        """Potential for manual (non-learned) features.

        Default: interpret the feature value itself as the potential.
        Only consulted when :attr:`learnable` is False.
        """
        return float(value)

    # ------------------------------------------------------------------
    @staticmethod
    def _item_class(item) -> str:
        if isinstance(item, Observation):
            return item.object_class
        if isinstance(item, ObservationBundle):
            return item.representative().object_class
        if isinstance(item, Track):
            return item.majority_class()
        if isinstance(item, tuple) and len(item) == 2:
            return item[0].representative().object_class
        raise TypeError(f"cannot derive a class from {type(item).__name__}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, kind={self.kind!r})"


class ObservationFeature(Feature):
    """Features over single observations (paper feature type 1)."""

    kind = "observation"

    @abstractmethod
    def compute(self, obs: Observation, context: FeatureContext):
        """Value for one observation."""

    def items_of(self, track: Track):
        return track.observations

    def observations_of(self, obs: Observation) -> list[Observation]:
        return [obs]


class BundleFeature(Feature):
    """Features over observation bundles (paper feature type 2)."""

    kind = "bundle"

    @abstractmethod
    def compute(self, bundle: ObservationBundle, context: FeatureContext):
        """Value for one bundle."""

    def items_of(self, track: Track):
        return list(track.bundles)

    def observations_of(self, bundle: ObservationBundle) -> list[Observation]:
        return list(bundle.observations)


class TransitionFeature(Feature):
    """Features over adjacent bundles within a track (paper type 3)."""

    kind = "transition"

    @abstractmethod
    def compute(
        self,
        transition: tuple[ObservationBundle, ObservationBundle],
        context: FeatureContext,
    ):
        """Value for one (β_i, β_{i+1}) pair."""

    def items_of(self, track: Track):
        return track.transitions()

    def observations_of(self, transition) -> list[Observation]:
        before, after = transition
        return list(before.observations) + list(after.observations)


class TrackFeature(Feature):
    """Features over entire tracks (paper feature type 4)."""

    kind = "track"

    @abstractmethod
    def compute(self, track: Track, context: FeatureContext):
        """Value for one track."""

    def items_of(self, track: Track):
        return [track]

    def observations_of(self, track: Track) -> list[Observation]:
        return track.observations
