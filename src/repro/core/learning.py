"""Learning feature distributions from organizational resources.

The offline phase of Fixy (§5.2): "To learn feature distributions given a
set of scenes, Fixy first exhaustively generates the features over the
data and collects the scalar or vector values. Then, for each feature,
Fixy executes the fitting function over the scalar/vector values."

The learned object is a :class:`LearnedFeatureDistribution` per (feature,
group) — group being the object class for class-conditional features.
Raw densities are converted to **relative likelihoods** in ``(0, 1]`` by
dividing by the density's maximum over the training values. This keeps
scores comparable across features (a KDE over volumes in m³ and one over
velocities in m/s have incommensurable density scales), makes the
``1 - x`` inversion AOF meaningful, and matches the magnitudes in the
paper's worked example (§6: volume scores 0.37/0.39, velocity 0.21).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import Feature, FeatureContext
from repro.core.model import SOURCE_HUMAN, Scene, Track
from repro.distributions import Distribution, fit_distribution

__all__ = [
    "LearnedFeatureDistribution",
    "LearnedModel",
    "FeatureDistributionLearner",
]

_POOLED = "__pooled__"


#: Smallest relative likelihood a learned distribution reports. Extreme
#: outliers would otherwise underflow to exactly 0 and be treated like
#: AOF-zeroed items (excluded from ranking) instead of ranking last.
LIKELIHOOD_FLOOR = 1e-12


@dataclass
class LearnedFeatureDistribution:
    """A fitted distribution plus its training-density normalizer.

    Batch evaluation can optionally be *grid-accelerated*
    (:meth:`enable_fast_eval`): the log density of an eligible 1-D KDE is
    precomputed on a validated interpolation grid
    (:class:`~repro.distributions.grid.GriddedDensity`), turning each
    per-query O(n_train) density evaluation into an O(log n_nodes)
    lookup. The grid builds lazily, once cumulative batch traffic would
    amortize its construction cost, so one-off evaluations (unit tests,
    single scenes) keep the exact path — as does :meth:`likelihood`, the
    scalar reference, always.
    """

    distribution: Distribution
    max_density: float
    n_samples: int

    def __post_init__(self) -> None:
        import threading

        # Transient acceleration state; never serialized. The lock
        # guards the pending→ready transition: Fixy can batch-evaluate
        # the same distribution from several compile threads (n_jobs),
        # and the grid should be built exactly once.
        self._fast_state = "off"  # "off" | "pending" | "ready" | "disabled"
        self._fast_grid = None
        self._fast_tol = 0.0
        self._rows_seen = 0
        self._cutover_rows = 0
        self._fast_lock = threading.Lock()

    # ------------------------------------------------------------------
    def enable_fast_eval(self, tol: float = 1e-5, eager: bool = False) -> bool:
        """Arm grid acceleration for :meth:`likelihood_batch`.

        Args:
            tol: Maximum validated interpolation error, in nats of log
                density, within the scoring-relevant band (see
                :mod:`repro.distributions.grid`).
            eager: Build the grid now instead of at the lazy cutover
                point. Use for offline preparation (benchmark warmup,
                long-lived servers).

        Returns:
            Whether acceleration is armed (or already built). ``False``
            when the distribution is ineligible (not a 1-D KDE).
        """
        from repro.distributions.grid import GriddedDensity

        if self._fast_state == "ready":
            return True
        nodes = GriddedDensity.node_count(self.distribution)
        if nodes is None:
            self._fast_state = "disabled"
            return False
        self._fast_tol = tol
        # Grid construction costs ~2 exact passes over `nodes` points;
        # cut over once cumulative batch queries would have paid for it.
        self._cutover_rows = 2 * nodes
        self._fast_state = "pending"
        if eager:
            self._build_fast()
        return self._fast_state in ("pending", "ready")

    def _build_fast(self) -> None:
        from repro.distributions.grid import GriddedDensity

        grid = GriddedDensity.try_build(self.distribution, tol=self._fast_tol)
        if grid is None:
            self._fast_state = "disabled"
        else:
            self._fast_grid = grid
            self._fast_state = "ready"

    # ------------------------------------------------------------------
    # Grid persistence: the validated grid is offline state worth
    # shipping with the model (serving workers skip the warmup build).
    # ------------------------------------------------------------------
    def fast_grid_to_dict(self) -> dict | None:
        """Snapshot of the built acceleration grid (``None`` unless ready)."""
        if self._fast_state != "ready":
            return None
        payload = self._fast_grid.to_dict()
        payload["tol"] = self._fast_tol
        return payload

    def restore_fast_grid(self, payload: dict) -> None:
        """Adopt a persisted grid: acceleration is immediately ready."""
        from repro.distributions.grid import GriddedDensity

        self._fast_grid = GriddedDensity.from_dict(payload, self.distribution)
        self._fast_tol = float(payload.get("tol", 0.0))
        self._fast_state = "ready"

    def likelihood(self, value) -> float:
        """Relative likelihood in ``[LIKELIHOOD_FLOOR, 1]``."""
        density = float(np.atleast_1d(self.distribution.pdf(value))[0])
        if self.max_density <= 0:
            return LIKELIHOOD_FLOOR
        return float(
            min(max(density / self.max_density, LIKELIHOOD_FLOOR), 1.0)
        )

    def likelihood_batch(self, values) -> np.ndarray:
        """Relative likelihoods for a batch of values, as an ``(n,)`` array.

        One ``log_pdf_batch`` call replaces ``n`` scalar ``pdf`` calls —
        the hot-path win of the columnar compile pipeline — with the same
        normalization and clamping as :meth:`likelihood`. When fast
        evaluation is armed (:meth:`enable_fast_eval`) and enough batch
        traffic has accumulated, the log densities come from the
        validated interpolation grid instead of the exact estimator.
        """
        n = np.asarray(values).shape[0] if np.ndim(values) else 1
        if self.max_density <= 0:
            return np.full(n, LIKELIHOOD_FLOOR)
        if self._fast_state == "pending":
            with self._fast_lock:
                if self._fast_state == "pending":
                    self._rows_seen += n
                    if self._rows_seen >= self._cutover_rows:
                        self._build_fast()
        if self._fast_state == "ready":
            log_densities = self._fast_grid.log_pdf_batch(values)
        else:
            log_densities = self.distribution.log_pdf_batch(values)
        densities = np.exp(log_densities)
        return np.clip(densities / self.max_density, LIKELIHOOD_FLOOR, 1.0)


@dataclass
class LearnedModel:
    """All fitted feature distributions: ``feature name -> group -> dist``."""

    distributions: dict[str, dict[str, LearnedFeatureDistribution]] = field(
        default_factory=dict
    )
    #: Memoized content hash — the estimator set is fixed once fitting
    #: (or from_dict) finishes, but serializing it costs tens of
    #: milliseconds, far too much to pay on every audit's provenance
    #: (coordinator *and* worker stamp one per request).
    _fingerprint: str | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Persistence (offline fits can be expensive; save them as JSON)
    # ------------------------------------------------------------------
    def to_dict(self, include_grids: bool = True) -> dict:
        """JSON-safe snapshot of every fitted distribution.

        With ``include_grids`` (default), distributions whose
        grid-accelerated evaluation has been built
        (:meth:`enable_fast_eval`) serialize the validated grid
        alongside the estimator, so a process that loads the model
        serves from the grid immediately instead of re-running the
        warmup build.
        """
        from repro.distributions import serialize

        out: dict = {}
        for feature, groups in self.distributions.items():
            out[feature] = {}
            for group, lfd in groups.items():
                payload = {
                    "distribution": serialize.to_dict(lfd.distribution),
                    "max_density": lfd.max_density,
                    "n_samples": lfd.n_samples,
                }
                if include_grids:
                    grid = lfd.fast_grid_to_dict()
                    if grid is not None:
                        payload["fast_grid"] = grid
                out[feature][group] = payload
        return out

    @staticmethod
    def from_dict(data: dict) -> "LearnedModel":
        from repro.distributions import serialize

        model = LearnedModel()
        for feature, groups in data.items():
            fitted: dict[str, LearnedFeatureDistribution] = {}
            for group, payload in groups.items():
                lfd = LearnedFeatureDistribution(
                    distribution=serialize.from_dict(payload["distribution"]),
                    max_density=float(payload["max_density"]),
                    n_samples=int(payload["n_samples"]),
                )
                if "fast_grid" in payload:
                    lfd.restore_fast_grid(payload["fast_grid"])
                fitted[group] = lfd
            model.distributions[feature] = fitted
        return model

    def fingerprint(self) -> str:
        """Stable content hash of the fitted estimators (memoized).

        Density grids are excluded — they are traffic-dependent
        acceleration state, not model identity, so a model fingerprints
        the same before and after its lazy grid builds. Audit results
        (:class:`repro.api.AuditResult`) record this hash as provenance.
        Computed once per model: the estimators never change after
        fitting, and re-serializing them per audit dominated the warm
        distributed hot path.
        """
        if self._fingerprint is None:
            import hashlib
            import json

            text = json.dumps(
                self.to_dict(include_grids=False), sort_keys=True
            )
            self._fingerprint = hashlib.blake2b(
                text.encode("utf-8"), digest_size=16
            ).hexdigest()
        return self._fingerprint

    def save(self, path, include_grids: bool = True) -> None:
        """Persist the model as JSON.

        ``include_grids`` (default) also persists any density grids
        built so far, so a process that loads the file serves
        accelerated batch densities with no warmup. Grids are by far
        the largest part of the payload and only exist once traffic (or
        an eager ``enable_fast_eval``) has built them — pass
        ``include_grids=False`` for a minimal, traffic-independent
        snapshot of just the fitted estimators.
        """
        import json
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_dict(include_grids=include_grids)),
            encoding="utf-8",
        )

    @staticmethod
    def load(path) -> "LearnedModel":
        import json
        from pathlib import Path

        return LearnedModel.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    def lookup(
        self, feature: Feature, group: str | None
    ) -> LearnedFeatureDistribution | None:
        """The distribution for a feature/group, falling back to pooled."""
        groups = self.distributions.get(feature.name)
        if not groups:
            return None
        key = group if group is not None else _POOLED
        if key in groups:
            return groups[key]
        return groups.get(_POOLED)

    def likelihood(self, feature: Feature, item, context: FeatureContext) -> float | None:
        """Relative likelihood of ``item`` under ``feature``.

        Returns ``None`` when the feature does not apply to the item or no
        distribution was learned for its group.
        """
        value = feature.compute(item, context)
        if value is None:
            return None
        dist = self.lookup(feature, feature.group_key(item, context))
        if dist is None:
            return None
        return dist.likelihood(value)

    def enable_fast_eval(self, tol: float = 1e-5, eager: bool = False) -> int:
        """Arm grid-accelerated batch evaluation on eligible distributions.

        Returns the number of distributions armed (or built, with
        ``eager=True``). See
        :meth:`LearnedFeatureDistribution.enable_fast_eval`.
        """
        count = 0
        for groups in self.distributions.values():
            for lfd in groups.values():
                if lfd.enable_fast_eval(tol, eager=eager):
                    count += 1
        return count

    def likelihood_batch(
        self, feature: Feature, values, groups: list
    ) -> np.ndarray:
        """Relative likelihoods for precomputed feature values.

        Args:
            feature: The feature the values belong to.
            values: ``(n,)`` or ``(n, d)`` array of feature values (already
                extracted, e.g. by
                :class:`repro.core.columnar.FeatureMatrix` — this method
                never calls ``feature.compute``).
            groups: Conditioning key per row (``None`` for pooled).

        Returns:
            ``(n,)`` float array. Rows whose group has no learned
            distribution (and no pooled fallback) are ``NaN`` — the batch
            marker for the scalar path's ``None``.
        """
        arr = np.asarray(values, dtype=float)
        n = arr.shape[0]
        if len(groups) != n:
            raise ValueError(f"got {n} values but {len(groups)} group keys")
        out = np.full(n, np.nan)
        rows_by_group: dict[str | None, list[int]] = {}
        for row, group in enumerate(groups):
            rows_by_group.setdefault(group, []).append(row)
        for group, rows in rows_by_group.items():
            dist = self.lookup(feature, group)
            if dist is None:
                continue
            idx = np.asarray(rows, dtype=int)
            out[idx] = dist.likelihood_batch(arr[idx])
        return out

    @property
    def feature_names(self) -> list[str]:
        return sorted(self.distributions)


class FeatureDistributionLearner:
    """Fits feature distributions over historical labeled scenes.

    Args:
        features: The features to learn (non-learnable features are
            skipped — they carry manual potentials instead).
        sources: Observation sources to learn from. Defaults to human
            labels only: the "existing organizational resource" of the
            paper. Tracks containing none of these sources are excluded
            so ghosts from an auxiliary model run cannot poison the fit.
        min_samples: Minimum values needed to fit a per-group
            distribution; smaller groups fall back to the pooled fit.
    """

    def __init__(
        self,
        features: list[Feature],
        sources: tuple[str, ...] = (SOURCE_HUMAN,),
        min_samples: int = 8,
    ):
        self.features = features
        self.sources = tuple(sources)
        self.min_samples = min_samples

    # ------------------------------------------------------------------
    def collect_values(
        self, scenes: list[Scene]
    ) -> dict[str, dict[str, list]]:
        """Exhaustively compute feature values over the training scenes.

        Returns ``feature name -> group key -> list of values``; every
        value is also recorded under the pooled key.
        """
        out: dict[str, dict[str, list]] = {
            f.name: {_POOLED: []} for f in self.features if f.learnable
        }
        for scene in scenes:
            context = FeatureContext.from_scene(scene)
            for track in scene.tracks:
                filtered = self._restrict_to_sources(track)
                if filtered is None:
                    continue
                for feature in self.features:
                    if not feature.learnable:
                        continue
                    for item in feature.items_of(filtered):
                        value = feature.compute(item, context)
                        if value is None:
                            continue
                        buckets = out[feature.name]
                        buckets[_POOLED].append(value)
                        group = feature.group_key(item, context)
                        if group is not None:
                            buckets.setdefault(group, []).append(value)
        return out

    def fit(self, scenes: list[Scene]) -> LearnedModel:
        """Learn all feature distributions from historical scenes."""
        values = self.collect_values(scenes)
        model = LearnedModel()
        for feature in self.features:
            if not feature.learnable:
                continue
            buckets = values[feature.name]
            fitted: dict[str, LearnedFeatureDistribution] = {}
            for group, group_values in buckets.items():
                if group != _POOLED and len(group_values) < self.min_samples:
                    continue
                if not group_values:
                    continue
                fitted[group] = self._fit_one(feature, group_values)
            if fitted:
                model.distributions[feature.name] = fitted
        return model

    # ------------------------------------------------------------------
    def _fit_one(
        self, feature: Feature, values: list
    ) -> LearnedFeatureDistribution:
        dist = fit_distribution(values, kind=feature.fitter)
        densities = np.atleast_1d(dist.pdf(np.asarray(values, dtype=float)))
        max_density = float(densities.max()) if densities.size else 0.0
        return LearnedFeatureDistribution(
            distribution=dist, max_density=max_density, n_samples=len(values)
        )

    def _restrict_to_sources(self, track: Track) -> Track | None:
        """A view of ``track`` with only the trusted-source observations.

        Bundles that lose all observations disappear; tracks that lose all
        bundles return ``None``.
        """
        from repro.core.model import ObservationBundle

        kept_bundles = []
        for bundle in track.bundles:
            kept = [o for o in bundle.observations if o.source in self.sources]
            if kept:
                kept_bundles.append(
                    ObservationBundle(frame=bundle.frame, observations=kept)
                )
        if not kept_bundles:
            return None
        return Track(track_id=track.track_id, bundles=kept_bundles)
