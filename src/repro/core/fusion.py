"""Track-level class inference via exact factor-graph inference.

The paper frames LOA as a sibling of the factor graphs used in robot
perception (§9); this module closes the loop by using the generic
sum-product engine in :mod:`repro.factorgraph` for a concrete perception
task: fusing a track's noisy per-observation class labels into a
posterior over the object's true class.

Model: one discrete variable (the track's true class) with a prior
factor, plus one factor per observation encoding the emission likelihood
``P(emitted class | true class)`` from a confusion matrix. The graph is
a star (a tree), so :func:`repro.factorgraph.sum_product` is exact.

This is useful on its own — the detector simulator's class errors flip a
run of frames, and the posterior both recovers the true class and flags
low-margin tracks for audit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import Track
from repro.factorgraph import FactorGraph, TableFactor, sum_product

__all__ = ["ClassPosterior", "uniform_confusion", "infer_track_class"]


@dataclass(frozen=True)
class ClassPosterior:
    """Posterior over a track's true class.

    Attributes:
        classes: Class names, aligned with ``probabilities``.
        probabilities: Posterior mass per class (sums to 1).
    """

    classes: tuple[str, ...]
    probabilities: tuple[float, ...]

    @property
    def map_class(self) -> str:
        """Most probable class."""
        return self.classes[int(np.argmax(self.probabilities))]

    @property
    def margin(self) -> float:
        """Gap between the top-two posteriors — small = worth auditing."""
        ordered = sorted(self.probabilities, reverse=True)
        if len(ordered) < 2:
            return 1.0
        return ordered[0] - ordered[1]

    def probability_of(self, cls: str) -> float:
        try:
            return self.probabilities[self.classes.index(cls)]
        except ValueError:
            raise KeyError(f"class {cls!r} not in posterior") from None


def uniform_confusion(classes: list[str], accuracy: float = 0.9) -> np.ndarray:
    """A symmetric confusion matrix: ``accuracy`` on the diagonal, the
    remainder spread evenly over the other classes.

    Rows are the true class, columns the emitted class.
    """
    n = len(classes)
    if n < 2:
        raise ValueError("need at least two classes")
    if not 0.0 < accuracy < 1.0:
        raise ValueError(f"accuracy must be in (0, 1), got {accuracy}")
    off = (1.0 - accuracy) / (n - 1)
    matrix = np.full((n, n), off)
    np.fill_diagonal(matrix, accuracy)
    return matrix


def infer_track_class(
    track: Track,
    classes: list[str],
    confusion: np.ndarray | None = None,
    prior: dict[str, float] | None = None,
) -> ClassPosterior:
    """Posterior over the track's true class from its noisy observations.

    Args:
        track: The track whose observations carry emitted class labels.
        classes: The class vocabulary (order fixes the posterior order).
        confusion: ``(n, n)`` emission matrix ``P(emitted | true)``; rows
            = true class. Defaults to :func:`uniform_confusion`.
        prior: Prior mass per class; uniform when omitted. Classes absent
            from the dict get zero prior.

    Raises:
        ValueError: On an empty track or an observation whose emitted
            class is outside ``classes``.
    """
    observations = track.observations
    if not observations:
        raise ValueError(f"track {track.track_id} has no observations")
    matrix = confusion if confusion is not None else uniform_confusion(classes)
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (len(classes), len(classes)):
        raise ValueError(
            f"confusion shape {matrix.shape} != ({len(classes)}, {len(classes)})"
        )
    index = {cls: i for i, cls in enumerate(classes)}

    graph = FactorGraph()
    var = "true_class"
    graph.add_variable(var, payload=track)

    prior_row = np.ones(len(classes))
    if prior is not None:
        prior_row = np.array([float(prior.get(cls, 0.0)) for cls in classes])
        if prior_row.sum() <= 0:
            raise ValueError("prior assigns no mass to any known class")
    graph.add_factor(
        "prior", [var], payload=TableFactor([var], [classes], prior_row)
    )

    for obs in observations:
        emitted = obs.object_class
        if emitted not in index:
            raise ValueError(
                f"observation {obs.obs_id} emitted unknown class {emitted!r}"
            )
        likelihood = matrix[:, index[emitted]].copy()
        graph.add_factor(
            f"emit-{obs.obs_id}",
            [var],
            payload=TableFactor([var], [classes], likelihood),
        )

    marginals = sum_product(graph)
    probs = marginals[var]
    return ClassPosterior(
        classes=tuple(classes), probabilities=tuple(float(p) for p in probs)
    )
