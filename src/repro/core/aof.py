"""Application objective functions (AOFs).

AOFs (§5.3) "wrap data feature distributions to transform them into
application-specific probabilities to guide the search for labeling
errors. As such, they take scalar values and return scalar values. The
most common operations are taking the inverse and setting the probability
to 0/1 under certain conditions."

An AOF here is a callable ``(likelihood, item) -> likelihood`` — the item
is passed so conditional AOFs ("zero out any track that contains a human
proposal") can inspect what they are transforming. Likelihoods are
relative likelihoods in ``[0, 1]`` (see
:class:`repro.core.learning.LearnedFeatureDistribution`), so inversion
``1 - x`` is well-defined.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "AOF",
    "IdentityAOF",
    "InvertAOF",
    "ZeroIfAOF",
    "KeepIfAOF",
    "ComposeAOF",
]


class AOF:
    """Base application objective function: the identity transform."""

    #: Whether the transform ignores ``item``. Item-free AOFs let the
    #: columnar compile path skip materializing item lists entirely, so
    #: only set it on subclasses whose ``__call__`` never reads ``item``.
    item_free: bool = False

    def __call__(self, likelihood: float, item=None) -> float:
        return likelihood

    def apply_batch(self, likelihoods, items) -> np.ndarray:
        """Transform a batch of likelihoods (columnar compile path).

        ``items`` is aligned with ``likelihoods`` (and may be ``None``
        when :attr:`item_free` is set). The default loops over
        ``__call__`` so subclasses that only override the scalar form
        stay correct; array-math overrides exist where the transform is
        item-independent.
        """
        arr = np.asarray(likelihoods, dtype=float)
        if items is None:
            items = [None] * arr.size
        return np.asarray(
            [self(float(value), item) for value, item in zip(arr, items)],
            dtype=float,
        )

    def __repr__(self) -> str:
        return type(self).__name__


class IdentityAOF(AOF):
    """Keep the likelihood as-is — used when searching for *likely* items
    (e.g. consistent model-only tracks that are probably missed labels)."""

    item_free = True

    def apply_batch(self, likelihoods, items) -> np.ndarray:
        return np.asarray(likelihoods, dtype=float)


class InvertAOF(AOF):
    """``f(x) = 1 - x`` — used when searching for *unlikely* items (e.g.
    erroneous model predictions, §7).

    Likelihoods are clamped into ``[0, 1]`` first, and the output is
    floored at ``eps`` so a perfectly-typical value does not annihilate a
    whole component with ``ln 0``; the floor keeps ranking intact while
    letting genuinely unlikely values dominate.
    """

    item_free = True

    def __init__(self, eps: float = 1e-4):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps

    def __call__(self, likelihood: float, item=None) -> float:
        clamped = min(max(likelihood, 0.0), 1.0)
        return max(1.0 - clamped, self.eps)

    def apply_batch(self, likelihoods, items) -> np.ndarray:
        arr = np.asarray(likelihoods, dtype=float)
        return np.maximum(1.0 - np.clip(arr, 0.0, 1.0), self.eps)


class ZeroIfAOF(AOF):
    """Zero the likelihood when ``predicate(item)`` holds.

    The workhorse of the §7 applications, e.g.::

        ZeroIfAOF(lambda track: track.has_human)   # drop labeled tracks
    """

    def __init__(self, predicate: Callable[[object], bool], label: str = ""):
        self.predicate = predicate
        self.label = label or getattr(predicate, "__name__", "predicate")

    def __call__(self, likelihood: float, item=None) -> float:
        if item is not None and self.predicate(item):
            return 0.0
        return likelihood

    def apply_batch(self, likelihoods, items) -> np.ndarray:
        arr = np.array(likelihoods, dtype=float, copy=True)
        for i, item in enumerate(items):
            if item is not None and self.predicate(item):
                arr[i] = 0.0
        return arr

    def __repr__(self) -> str:
        return f"ZeroIfAOF({self.label})"


class KeepIfAOF(AOF):
    """Zero the likelihood unless ``predicate(item)`` holds (the
    complement of :class:`ZeroIfAOF`)."""

    def __init__(self, predicate: Callable[[object], bool], label: str = ""):
        self.predicate = predicate
        self.label = label or getattr(predicate, "__name__", "predicate")

    def __call__(self, likelihood: float, item=None) -> float:
        if item is None or self.predicate(item):
            return likelihood
        return 0.0

    def apply_batch(self, likelihoods, items) -> np.ndarray:
        arr = np.array(likelihoods, dtype=float, copy=True)
        for i, item in enumerate(items):
            if item is not None and not self.predicate(item):
                arr[i] = 0.0
        return arr

    def __repr__(self) -> str:
        return f"KeepIfAOF({self.label})"


class ComposeAOF(AOF):
    """Apply several AOFs left to right."""

    def __init__(self, *aofs: AOF):
        if not aofs:
            raise ValueError("ComposeAOF needs at least one AOF")
        self.aofs = aofs
        self.item_free = all(aof.item_free for aof in aofs)

    def __call__(self, likelihood: float, item=None) -> float:
        out = likelihood
        for aof in self.aofs:
            out = aof(out, item)
        return out

    def apply_batch(self, likelihoods, items) -> np.ndarray:
        out = np.asarray(likelihoods, dtype=float)
        for aof in self.aofs:
            out = aof.apply_batch(out, items)
        return out

    def __repr__(self) -> str:
        return "ComposeAOF(" + ", ".join(repr(a) for a in self.aofs) + ")"
