"""Scoring relative plausibility (§6).

An observation's score is the sum of the log potentials of the feature
distributions attached to it (Eq. 2, after AOF transformation). The score
of any component (observation, bundle, or track) is the sum over the
*distinct* factors connected to the component's observations, normalized
by the number of those factors — "so that components of different sizes
are comparable (e.g., a track with 10 observations compared to a track
with 100 observations)".

Worked example from the paper: a two-observation track with volume
likelihoods 0.37 and 0.39 and a velocity likelihood of 0.21 scores
``(ln 0.37 + ln 0.39 + ln 0.21) / 3 = -1.17``.

A component touching a zero potential (an AOF that zeroed it out) scores
``-inf`` and is dropped from rankings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.core.compile import CompiledScene
from repro.core.model import Observation, ObservationBundle, Track
from repro.factorgraph.factors import log_potential

__all__ = ["ScoredItem", "Scorer"]


@dataclass(frozen=True)
class ScoredItem:
    """One ranked component.

    Attributes:
        item: The scored Observation / ObservationBundle / Track.
        score: Normalized log likelihood (higher = more plausible under
            the AOF-transformed feature distributions).
        scene_id: Scene the component came from.
        track_id: Enclosing track (the track itself for track items).
        n_factors: Number of feature-distribution factors that scored it.
    """

    item: object
    score: float
    scene_id: str
    track_id: str
    n_factors: int


class Scorer:
    """Scores components of a compiled scene."""

    def __init__(self, compiled: CompiledScene):
        self.compiled = compiled

    # ------------------------------------------------------------------
    def score_observations(self, observations: list[Observation]) -> float | None:
        """Normalized log score of an arbitrary observation set.

        Returns ``None`` when no factor touches the component (nothing to
        say about it), ``-inf`` when any touching potential is zero.
        """
        factor_names = self.compiled.factors_of_observations(observations)
        if not factor_names:
            return None
        total = 0.0
        for name in factor_names:
            value = self.compiled.factors[name].value
            log_value = log_potential(value)
            if log_value == -math.inf:
                return -math.inf
            total += log_value
        return total / len(factor_names)

    def score_observation(self, obs: Observation) -> float | None:
        return self.score_observations([obs])

    def score_bundle(self, bundle: ObservationBundle) -> float | None:
        return self.score_observations(list(bundle.observations))

    def score_track(self, track: Track) -> float | None:
        return self.score_observations(track.observations)

    # ------------------------------------------------------------------
    def rank_tracks(
        self, track_filter: Callable[[Track], bool] | None = None
    ) -> list[ScoredItem]:
        """All finite-scoring tracks, best score first."""
        out = []
        for track in self.compiled.scene.tracks:
            if track_filter is not None and not track_filter(track):
                continue
            score = self.score_track(track)
            if score is None or score == -math.inf:
                continue
            out.append(
                ScoredItem(
                    item=track,
                    score=score,
                    scene_id=self.compiled.scene.scene_id,
                    track_id=track.track_id,
                    n_factors=len(
                        self.compiled.factors_of_observations(track.observations)
                    ),
                )
            )
        out.sort(key=lambda s: s.score, reverse=True)
        return out

    def rank_bundles(
        self,
        bundle_filter: Callable[[ObservationBundle, Track], bool] | None = None,
    ) -> list[ScoredItem]:
        """All finite-scoring bundles, best score first.

        ``bundle_filter`` receives the bundle and its enclosing track.
        """
        out = []
        for track in self.compiled.scene.tracks:
            for bundle in track.bundles:
                if bundle_filter is not None and not bundle_filter(bundle, track):
                    continue
                score = self.score_bundle(bundle)
                if score is None or score == -math.inf:
                    continue
                out.append(
                    ScoredItem(
                        item=bundle,
                        score=score,
                        scene_id=self.compiled.scene.scene_id,
                        track_id=track.track_id,
                        n_factors=len(
                            self.compiled.factors_of_observations(
                                list(bundle.observations)
                            )
                        ),
                    )
                )
        out.sort(key=lambda s: s.score, reverse=True)
        return out

    def rank_observations(
        self, obs_filter: Callable[[Observation], bool] | None = None
    ) -> list[ScoredItem]:
        """All finite-scoring individual observations, best first."""
        out = []
        for track in self.compiled.scene.tracks:
            for obs in track.observations:
                if obs_filter is not None and not obs_filter(obs):
                    continue
                score = self.score_observation(obs)
                if score is None or score == -math.inf:
                    continue
                out.append(
                    ScoredItem(
                        item=obs,
                        score=score,
                        scene_id=self.compiled.scene.scene_id,
                        track_id=track.track_id,
                        n_factors=len(self.compiled.factors_of_observations([obs])),
                    )
                )
        out.sort(key=lambda s: s.score, reverse=True)
        return out
