"""Scoring relative plausibility (§6).

An observation's score is the sum of the log potentials of the feature
distributions attached to it (Eq. 2, after AOF transformation). The score
of any component (observation, bundle, or track) is the sum over the
*distinct* factors connected to the component's observations, normalized
by the number of those factors — "so that components of different sizes
are comparable (e.g., a track with 10 observations compared to a track
with 100 observations)".

Worked example from the paper: a two-observation track with volume
likelihoods 0.37 and 0.39 and a velocity likelihood of 0.21 scores
``(ln 0.37 + ln 0.39 + ln 0.21) / 3 = -1.17``.

A component touching a zero potential (an AOF that zeroed it out) scores
``-inf`` and is dropped from rankings.

Implementation: on construction the :class:`Scorer` builds, in one
pass, a log-potential array (one entry per factor, via
:func:`~repro.factorgraph.factors.log_potentials`) plus a
row-sorted edge table mapping each observation to the array positions
of its adjacent factors. Scoring a component is then a NumPy gather +
reduce — no graph traversal — and the ``rank_*`` methods read both the
score and the factor count from that one lookup (previously
``factors_of_observations`` walked the graph twice per ranked item).

Vectorized compiles feed the edge table straight from
:class:`~repro.core.compile.CompiledColumns` arrays without ever
materializing factor-graph nodes; ``rank_tracks`` additionally uses the
per-track factor slices those arrays carry (factors of a track are
contiguous, so a track's score is a single vector reduce). Scalar
compiles and hand-built :class:`~repro.core.compile.CompiledScene`
instances build the same structures by walking ``compiled.factors``
once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.compile import CompiledScene
from repro.core.model import Observation, ObservationBundle, Track
from repro.factorgraph.factors import log_potentials

__all__ = [
    "RANK_KINDS",
    "ScoredItem",
    "Scorer",
    "UnknownRankKindError",
    "merge_rankings",
    "normalize_rank_kind",
]

#: The component kinds every ranking surface understands, canonical form.
RANK_KINDS = ("tracks", "bundles", "observations")

_KIND_ALIASES = {
    "track": "tracks",
    "tracks": "tracks",
    "bundle": "bundles",
    "bundles": "bundles",
    "observation": "observations",
    "observations": "observations",
}


class UnknownRankKindError(ValueError):
    """A rank ``kind`` that no ranking surface understands.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handlers keep working. Carries the offending ``kind`` and the
    ``valid`` kinds so protocol layers can surface a structured error.
    """

    def __init__(self, kind, valid: tuple[str, ...] = RANK_KINDS):
        self.kind = kind
        self.valid = tuple(valid)
        super().__init__(
            f"unknown rank kind {kind!r}; expected {', '.join(self.valid)}"
        )

    def __reduce__(self):  # survive the process-pool boundary intact
        return (type(self), (self.kind, self.valid))


def normalize_rank_kind(kind: str) -> str:
    """Canonical plural form of a rank kind (singulars accepted).

    Raises :class:`UnknownRankKindError` on anything else.
    """
    try:
        return _KIND_ALIASES[kind]
    except (KeyError, TypeError):
        raise UnknownRankKindError(kind) from None


def merge_rankings(
    blocks, top_k: int | None = None
) -> "list[ScoredItem]":
    """Merge per-scene ranking blocks into one globally sorted list.

    Every multi-scene surface (inline, thread pool, process pool,
    per-scene sessions) funnels through this one merge: blocks are
    concatenated in submission order, then stable-sorted best score
    first — so identical per-scene blocks always produce the identical
    merged ranking, whatever execution strategy produced them.
    """
    ranked: list[ScoredItem] = []
    for block in blocks:
        ranked.extend(block)
    ranked.sort(key=lambda s: s.score, reverse=True)
    return ranked[:top_k] if top_k is not None else ranked


@dataclass(frozen=True)
class ScoredItem:
    """One ranked component.

    Attributes:
        item: The scored Observation / ObservationBundle / Track, or
            ``None`` for items round-tripped through :meth:`from_dict`
            (the wire form carries a summary, not the live object).
        score: Normalized log likelihood (higher = more plausible under
            the AOF-transformed feature distributions).
        scene_id: Scene the component came from.
        track_id: Enclosing track (the track itself for track items).
        n_factors: Number of feature-distribution factors that scored it.
        summary: The JSON-safe payload this item was reconstructed from
            (``None`` for live items). Excluded from equality.
    """

    item: object
    score: float
    scene_id: str
    track_id: str
    n_factors: int
    summary: dict | None = field(default=None, compare=False, repr=False)

    @property
    def kind(self) -> str | None:
        """Singular component kind (``"track"``/``"bundle"``/``"observation"``)."""
        if isinstance(self.item, Track):
            return "track"
        if isinstance(self.item, ObservationBundle):
            return "bundle"
        if isinstance(self.item, Observation):
            return "observation"
        if self.summary is not None:
            return self.summary.get("kind")
        return None

    def to_dict(self, kind: str | None = None) -> dict:
        """JSON-safe description of this ranked component.

        The one serialization every surface uses — the streaming
        service, the CLI, and :class:`repro.api.AuditResult`. ``kind``
        optionally overrides the label (plural forms accepted); by
        default it is derived from the item type.
        """
        if self.item is None and self.summary is not None:
            return dict(self.summary)
        out = {
            "kind": kind.rstrip("s") if kind else self.kind,
            "score": self.score,
            "scene_id": self.scene_id,
            "track_id": self.track_id,
            "n_factors": self.n_factors,
        }
        item = self.item
        if isinstance(item, Observation):
            out["obs_id"] = item.obs_id
            out["frame"] = item.frame
        elif isinstance(item, ObservationBundle):
            out["frame"] = item.frame
            out["n_observations"] = len(item)
        elif isinstance(item, Track):
            out["n_observations"] = item.n_observations
        return out

    @staticmethod
    def from_dict(data: dict) -> "ScoredItem":
        """Rebuild from :meth:`to_dict`. The live ``item`` is gone after
        serialization; the reconstructed ScoredItem carries the payload
        in :attr:`summary` instead (``item`` is ``None``)."""
        return ScoredItem(
            item=None,
            score=float(data["score"]),
            scene_id=data["scene_id"],
            track_id=data["track_id"],
            n_factors=int(data["n_factors"]),
            summary=dict(data),
        )


class Scorer:
    """Scores components of a compiled scene.

    Construction precomputes the log-potential array and per-observation
    factor-index structures described in the module docstring; all
    scoring methods run off those arrays.
    """

    def __init__(self, compiled: CompiledScene):
        self.compiled = compiled
        columns = getattr(compiled, "columns", None)
        self._track_slices: dict[str, tuple[int, int]] | None = None
        if columns is not None:
            self._init_from_columns(columns)
        else:
            self._init_from_graph(compiled)

    def _init_from_columns(self, columns) -> None:
        """Edge table straight from the columnar compile arrays."""
        n_factors = columns.n_factors
        self._log_pot = (
            log_potentials(columns.potentials)
            if n_factors
            else np.empty(0, dtype=float)
        )
        lengths = (columns.member_stop - columns.member_start).astype(np.intp)
        for i, rows in columns.member_overrides.items():
            lengths[i] = rows.size
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        total = int(offsets[-1])
        if total:
            # Expand each factor's [start, stop) range into explicit rows.
            flat = (
                np.arange(total)
                - np.repeat(offsets[:-1], lengths)
                + np.repeat(columns.member_start, lengths)
            )
            for i, rows in columns.member_overrides.items():
                flat[offsets[i] : offsets[i + 1]] = rows
            edge_factor = np.repeat(np.arange(n_factors, dtype=np.intp), lengths)
            order = np.argsort(flat, kind="stable")
            rows_sorted = flat[order]
            self._edge_factors = edge_factor[order]
            self._row_ptr = np.searchsorted(
                rows_sorted, np.arange(columns.table.n_obs + 1)
            )
        else:
            self._edge_factors = np.empty(0, dtype=np.intp)
            self._row_ptr = np.zeros(columns.table.n_obs + 1, dtype=np.intp)
        # Bound lazily in _factor_indices: on spliced compiles the
        # obs-id → row map only materializes if a bundle/observation
        # query actually needs it (track ranking runs off the slices).
        self._table = columns.table
        self._row_of = None
        self._obs_factors = None
        # The slice shortcut assumes a track's factors attach only to
        # its own observations; custom cross-track features void it.
        if columns.track_slices_cover_members:
            self._track_slices = columns.track_factor_slices

    def _init_from_graph(self, compiled: CompiledScene) -> None:
        """One pass over an eagerly-built graph (scalar or hand-built)."""
        graph = compiled.graph
        values = []
        obs_lists: dict[str, list[int]] = {}
        for name, factor in compiled.factors.items():
            if not graph.has_factor(name):
                continue
            index = len(values)
            values.append(factor.value)
            for var in graph.factor_scope(name):
                obs_lists.setdefault(var.name, []).append(index)
        self._log_pot = (
            log_potentials(values) if values else np.empty(0, dtype=float)
        )
        self._obs_factors = {
            obs_id: np.asarray(indices, dtype=np.intp)
            for obs_id, indices in obs_lists.items()
        }
        self._table = None
        self._row_of = None

    # ------------------------------------------------------------------
    def _factor_indices(self, observations: list[Observation]) -> list[np.ndarray]:
        """Per-observation adjacent-factor index arrays."""
        if self._obs_factors is not None:
            return [
                self._obs_factors[obs.obs_id]
                for obs in observations
                if obs.obs_id in self._obs_factors
            ]
        if self._row_of is None:
            self._row_of = self._table.row_of
        out = []
        for obs in observations:
            row = self._row_of.get(obs.obs_id)
            if row is None:
                continue
            part = self._edge_factors[self._row_ptr[row] : self._row_ptr[row + 1]]
            if part.size:
                out.append(part)
        return out

    def _score_and_count(
        self, observations: list[Observation]
    ) -> tuple[float | None, int]:
        """Normalized log score and distinct-factor count, in one lookup."""
        index_arrays = self._factor_indices(observations)
        if not index_arrays:
            return None, 0
        if len(index_arrays) == 1:
            indices = index_arrays[0]
        else:
            indices = np.unique(np.concatenate(index_arrays))
        logs = self._log_pot[indices]
        n_factors = int(indices.size)
        if np.isneginf(logs).any():
            return -math.inf, n_factors
        return float(logs.sum() / n_factors), n_factors

    def _score_track_slice(self, track_id: str) -> tuple[float | None, int]:
        """A track's score from its contiguous factor slice (fast path)."""
        start, stop = self._track_slices[track_id]
        n_factors = stop - start
        if n_factors == 0:
            return None, 0
        logs = self._log_pot[start:stop]
        if np.isneginf(logs).any():
            return -math.inf, n_factors
        return float(logs.sum() / n_factors), n_factors

    def score_observations(self, observations: list[Observation]) -> float | None:
        """Normalized log score of an arbitrary observation set.

        Returns ``None`` when no factor touches the component (nothing to
        say about it), ``-inf`` when any touching potential is zero.
        """
        score, _ = self._score_and_count(observations)
        return score

    def score_observation(self, obs: Observation) -> float | None:
        return self.score_observations([obs])

    def score_bundle(self, bundle: ObservationBundle) -> float | None:
        return self.score_observations(list(bundle.observations))

    def score_track(self, track: Track) -> float | None:
        return self.score_observations(track.observations)

    # ------------------------------------------------------------------
    def _scored(self, item, observations, track_id: str) -> ScoredItem | None:
        score, n_factors = self._score_and_count(observations)
        if score is None or score == -math.inf:
            return None
        return ScoredItem(
            item=item,
            score=score,
            scene_id=self.compiled.scene.scene_id,
            track_id=track_id,
            n_factors=n_factors,
        )

    def rank(self, kind: str, filt=None) -> list[ScoredItem]:
        """Rank by component kind name — the serving-layer dispatcher.

        ``kind`` is ``"tracks"``, ``"bundles"``, or ``"observations"``
        (singular forms accepted). Lets callers that receive the kind as
        data (the JSON service, process-pool workers) avoid getattr
        string plumbing. Raises :class:`UnknownRankKindError` on
        anything else.
        """
        method = {
            "tracks": self.rank_tracks,
            "bundles": self.rank_bundles,
            "observations": self.rank_observations,
        }[normalize_rank_kind(kind)]
        return method(filt)

    def rank_tracks(
        self, track_filter: Callable[[Track], bool] | None = None
    ) -> list[ScoredItem]:
        """All finite-scoring tracks, best score first."""
        out = []
        scene_id = self.compiled.scene.scene_id
        for track in self.compiled.scene.tracks:
            if track_filter is not None and not track_filter(track):
                continue
            if self._track_slices is not None and track.track_id in self._track_slices:
                score, n_factors = self._score_track_slice(track.track_id)
                if score is None or score == -math.inf:
                    continue
                out.append(
                    ScoredItem(
                        item=track,
                        score=score,
                        scene_id=scene_id,
                        track_id=track.track_id,
                        n_factors=n_factors,
                    )
                )
                continue
            scored = self._scored(track, track.observations, track.track_id)
            if scored is not None:
                out.append(scored)
        out.sort(key=lambda s: s.score, reverse=True)
        return out

    def rank_bundles(
        self,
        bundle_filter: Callable[[ObservationBundle, Track], bool] | None = None,
    ) -> list[ScoredItem]:
        """All finite-scoring bundles, best score first.

        ``bundle_filter`` receives the bundle and its enclosing track.
        """
        out = []
        for track in self.compiled.scene.tracks:
            for bundle in track.bundles:
                if bundle_filter is not None and not bundle_filter(bundle, track):
                    continue
                scored = self._scored(
                    bundle, list(bundle.observations), track.track_id
                )
                if scored is not None:
                    out.append(scored)
        out.sort(key=lambda s: s.score, reverse=True)
        return out

    def rank_observations(
        self, obs_filter: Callable[[Observation], bool] | None = None
    ) -> list[ScoredItem]:
        """All finite-scoring individual observations, best first."""
        out = []
        for track in self.compiled.scene.tracks:
            for obs in track.observations:
                if obs_filter is not None and not obs_filter(obs):
                    continue
                scored = self._scored(obs, [obs], track.track_id)
                if scored is not None:
                    out.append(scored)
        out.sort(key=lambda s: s.score, reverse=True)
        return out
