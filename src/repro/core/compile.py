"""Compiling scenes into factor graphs (§4.3).

"To compile a scene, Fixy will create nodes for each observation and
feature distribution. Then, Fixy will create edges between each feature
distribution and the observation it applies over. If a feature
distribution applies to a group of observations (e.g., an observation
bundle or track), Fixy will create one edge between each observation in
the group and the feature distribution."

The compiled graph is the scoring substrate: a component's score is read
off the factors adjacent to its observations (:mod:`repro.core.scoring`).
Factor potentials are evaluated eagerly at compile time — features and
learned distributions are deterministic, and the paper's workloads score
every component anyway.

Two evaluation strategies produce identical factor structure:

- **Columnar (default)** — the scene is lowered to a
  :class:`~repro.core.columnar.FeatureMatrix` (each feature extracted
  once into NumPy arrays over a shared
  :class:`~repro.core.columnar.ObservationTable`), every learned
  (feature, group) pair is scored with a single batched ``log_pdf`` call
  (:meth:`~repro.core.learning.LearnedModel.likelihood_batch`), AOFs are
  applied batch-wise, and the resulting potentials live in flat arrays
  (:class:`CompiledColumns`). **No factor-graph node objects are
  built**: scoring reads the arrays directly, and the ``graph`` /
  ``factors`` views materialize lazily on first access with exactly the
  structure, names, and insertion order the scalar path produces.
- **Scalar reference** (``vectorized=False``) — the original
  O(items × features) loop of per-item ``likelihood()`` calls, kept as
  the executable specification the vectorized path is property-tested
  against (scores must agree to 1e-9; see
  ``tests/core/test_columnar.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.core.aof import AOF, IdentityAOF
from repro.core.columnar import (
    FeatureColumn,
    FeatureMatrix,
    ObservationTable,
    SplicedMatrix,
    SplicedTable,
    concat_arrays,
)
from repro.core.features import Feature, FeatureContext
from repro.core.learning import LearnedModel
from repro.core.model import Observation, ObservationBundle, Scene, Track
from repro.factorgraph import Factor, FactorGraph

__all__ = [
    "PotentialFactor",
    "CompiledScene",
    "CompiledColumns",
    "compile_scene",
    "splice_compiled",
]


class PotentialFactor(Factor):
    """A factor with a fixed, precomputed potential.

    Compiled LOA graphs condition on the observed data, so each feature
    distribution contributes a constant potential; the graph structure
    still matters for normalization and component queries.
    """

    def __init__(self, value: float, feature_name: str, item=None):
        if value < 0:
            raise ValueError(f"potential must be non-negative, got {value}")
        self.value = float(value)
        self.feature_name = feature_name
        self.item = item

    def evaluate(self, assignment: Mapping[Hashable, object] = None) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"PotentialFactor({self.feature_name!r}, {self.value:.4g})"


@dataclass
class CompiledColumns:
    """Array-backed factor store produced by the columnar compile path.

    One row per factor, in the scalar path's insertion order
    (track-major, then feature, then item). Scoring runs entirely off
    these arrays; :class:`CompiledScene` materializes graph node objects
    from them only when a caller actually asks for the graph.
    """

    table: ObservationTable
    matrix: FeatureMatrix
    #: active features in compile order (factor_feature indexes this)
    features: list[Feature]
    factor_feature: np.ndarray
    #: row of the factor's item within its column
    factor_item: np.ndarray
    potentials: np.ndarray
    member_start: np.ndarray
    member_stop: np.ndarray
    #: non-contiguous member rows, keyed by factor index (rare)
    member_overrides: dict[int, np.ndarray]
    #: track ids in scene order
    track_order: list[str]
    #: ``[start, stop)`` factor range per track id
    track_factor_slices: dict[str, tuple[int, int]]
    #: whether every factor's members lie within its own track's
    #: observations — the invariant the per-track slice scoring fast
    #: path needs. A custom ``observations_of`` reaching across tracks
    #: clears it, and scoring falls back to the edge-table union.
    track_slices_cover_members: bool = True
    _names: list[str] | None = field(default=None, repr=False)

    @property
    def n_factors(self) -> int:
        return int(self.potentials.size)

    def member_rows(self, i: int) -> np.ndarray:
        """Observation rows the ``i``-th factor attaches to."""
        rows = self.member_overrides.get(i)
        if rows is not None:
            return rows
        return np.arange(self.member_start[i], self.member_stop[i])

    def factor_names(self) -> list[str]:
        """Factor names (``feature@track#index``), scalar-path identical."""
        if self._names is None:
            names: list[str] = [""] * self.n_factors
            track_index = {tid: ti for ti, tid in enumerate(self.track_order)}
            for tid, (start, stop) in self.track_factor_slices.items():
                ti = track_index[tid]
                for i in range(start, stop):
                    feature = self.features[self.factor_feature[i]]
                    column = self.matrix.columns[feature.name]
                    item_idx = self.factor_item[i] - column.track_slices[ti][0]
                    names[i] = f"{feature.name}@{tid}#{item_idx}"
            self._names = names
        return self._names


class CompiledScene:
    """A scene compiled to a factor graph, with item↔node indexes.

    Vectorized compiles carry a :class:`CompiledColumns` payload and
    build the ``graph`` / ``factors`` views lazily — ranking never needs
    them, and materializing thousands of node objects per scene is the
    kind of per-item cost the columnar pipeline exists to avoid. Scalar
    compiles (and hand-built instances) pass ``graph`` / ``factors``
    eagerly, exactly as before.
    """

    def __init__(
        self,
        scene: Scene,
        context: FeatureContext,
        graph: FactorGraph | None = None,
        factors: dict[str, PotentialFactor] | None = None,
        tracks: dict[str, Track] | None = None,
        columns: CompiledColumns | None = None,
    ):
        self.scene = scene
        self.context = context
        self.tracks = tracks if tracks is not None else {}
        self.columns = columns
        self._graph = graph
        self._factors = factors
        if columns is None:
            if self._graph is None:
                self._graph = FactorGraph()
            if self._factors is None:
                self._factors = {}

    # ------------------------------------------------------------------
    @property
    def graph(self) -> FactorGraph:
        """The factor graph (materialized on first access)."""
        if self._graph is None:
            self._materialize()
        return self._graph

    @property
    def factors(self) -> dict[str, PotentialFactor]:
        """factor node name -> PotentialFactor (same object as the payload)."""
        if self._factors is None:
            self._materialize()
        return self._factors

    def _materialize(self) -> None:
        cols = self.columns
        graph = FactorGraph()
        for obs in cols.table.observations:
            graph.add_variable(obs.obs_id, payload=obs)
        factors: dict[str, PotentialFactor] = {}
        names = cols.factor_names()
        observations = cols.table.observations
        for i in range(cols.n_factors):
            feature = cols.features[cols.factor_feature[i]]
            column = cols.matrix.columns[feature.name]
            item = column.item_at(int(cols.factor_item[i]))
            factor = PotentialFactor(
                float(cols.potentials[i]), feature.name, item=item
            )
            obs_ids = [observations[r].obs_id for r in cols.member_rows(i)]
            graph.add_factor(names[i], obs_ids, payload=factor)
            factors[names[i]] = factor
        self._graph = graph
        self._factors = factors

    def factors_of_observations(self, observations: list[Observation]) -> list[str]:
        """Names of all factor nodes adjacent to any of ``observations``,
        each counted once (deduplicated, insertion-ordered)."""
        graph = self.graph
        seen: dict[str, None] = {}
        for obs in observations:
            if not graph.has_variable(obs.obs_id):
                continue
            for node in graph.factors_of(obs.obs_id):
                seen.setdefault(node.name, None)
        return list(seen)


def compile_scene(
    scene: Scene,
    features: list[Feature],
    learned: LearnedModel | None = None,
    aofs: Mapping[str, AOF] | None = None,
    context: FeatureContext | None = None,
    vectorized: bool = True,
) -> CompiledScene:
    """Compile a scene + features (+ learned distributions) into a graph.

    Args:
        scene: The associated scene to compile.
        features: Feature set (learned features need ``learned``).
        learned: Fitted distributions from
            :class:`~repro.core.learning.FeatureDistributionLearner`.
            Learnable features without a fitted distribution contribute no
            factors (with a silent skip, matching the fallback semantics
            of §5.2's "default hyperparameters work in all cases").
        aofs: Optional per-feature AOF, keyed by feature name. Features
            without an entry use the identity AOF.
        context: Feature context; derived from the scene when omitted.
        vectorized: Evaluate potentials through the columnar batch
            pipeline with a lazily-materialized graph (default).
            ``False`` selects the scalar reference loop. Both produce
            identical factor structure, and — as long as the learned
            model's batch path is exact — potentials that agree to
            floating-point round-off. When grid acceleration is armed
            (:meth:`~repro.core.learning.LearnedModel.enable_fast_eval`,
            Fixy's ``fast_density`` default) and its lazy cutover has
            triggered, batch densities instead carry the grid's
            validated interpolation error (≤ its ``tol``, default
            1e-5 nats).

    Returns:
        The compiled scene with one variable node per observation and one
        factor node per applicable (feature, item) pair.
    """
    from repro.obs import trace as obs_trace
    from repro.obs.metrics import Stopwatch

    ctx = context or FeatureContext.from_scene(scene)
    aof_map = dict(aofs or {})
    identity = IdentityAOF()

    watch = Stopwatch()
    traced = obs_trace.current_trace() is not None  # cheap gate: one get()
    if traced:
        with obs_trace.span(
            "compile",
            attrs={
                "scene": scene.scene_id,
                "tracks": len(scene.tracks),
                "vectorized": vectorized,
            },
        ) as record:
            compiled = (
                _compile_columnar(
                    scene, features, learned, aof_map, identity, ctx
                )
                if vectorized
                else _compile_scalar(
                    scene, features, learned, aof_map, identity, ctx
                )
            )
            if compiled.columns is not None:
                record.attrs["rows"] = len(compiled.columns.table.row_of)
    elif vectorized:
        compiled = _compile_columnar(
            scene, features, learned, aof_map, identity, ctx
        )
    else:
        compiled = _compile_scalar(
            scene, features, learned, aof_map, identity, ctx
        )
    _COMPILE_SECONDS.observe(watch.s)
    _COMPILE_SCENES.inc()
    if compiled.columns is not None:
        _COMPILE_ROWS.inc(len(compiled.columns.table.row_of))
    return compiled


# Compile metrics (module-level so the first compile doesn't pay
# registration; see docs/API.md "Observability" for the catalogue).
def _compile_metrics():
    from repro.obs import metrics as obs_metrics

    return (
        obs_metrics.counter(
            "repro_compile_scenes_total", "Scenes compiled"
        ),
        obs_metrics.histogram(
            "repro_compile_seconds", "Seconds per compile_scene call"
        ),
        obs_metrics.counter(
            "repro_compile_rows_total",
            "Observation rows materialized by columnar compiles",
        ),
    )


_COMPILE_SCENES, _COMPILE_SECONDS, _COMPILE_ROWS = _compile_metrics()


# ----------------------------------------------------------------------
# Columnar path: extract once, batch-evaluate, store potentials as arrays.
# ----------------------------------------------------------------------
def _compile_columnar(
    scene: Scene,
    features: list[Feature],
    learned: LearnedModel | None,
    aof_map: Mapping[str, AOF],
    identity: AOF,
    ctx: FeatureContext,
) -> CompiledScene:
    # Learnable features without a model never call compute() on the
    # scalar path; exclude them from extraction to match.
    active = [f for f in features if (not f.learnable) or learned is not None]
    table = ObservationTable(scene)
    matrix = FeatureMatrix.build(scene, active, ctx, table)

    for feature in active:
        column = matrix.columns[feature.name]
        aof = aof_map.get(feature.name, identity)
        column.potentials = _column_potentials(feature, column, learned, aof)

    feat_parts: list[np.ndarray] = []
    item_parts: list[np.ndarray] = []
    pot_parts: list[np.ndarray] = []
    ms_parts: list[np.ndarray] = []
    me_parts: list[np.ndarray] = []
    overrides: dict[int, np.ndarray] = {}
    track_factor_slices: dict[str, tuple[int, int]] = {}
    slices_cover_members = True
    total = 0

    for ti, track in enumerate(scene.tracks):
        track_start = total
        obs_lo, obs_hi = table.track_obs_slices[ti]
        for fi, feature in enumerate(active):
            column = matrix.columns[feature.name]
            s, e = column.track_slices[ti]
            if e == s:
                continue
            block = column.potentials[s:e]
            # A factor needs both a potential and member observations to
            # attach to (the scalar path skips empty-member items too).
            has_members = column.member_stop[s:e] > column.member_start[s:e]
            if column.member_overrides:
                has_members = has_members.copy()
                for row in range(s, e):
                    if row in column.member_overrides:
                        has_members[row - s] = True
            valid_rows = s + np.flatnonzero(~np.isnan(block) & has_members)
            if valid_rows.size == 0:
                continue
            member_starts = column.member_start[valid_rows]
            member_stops = column.member_stop[valid_rows]
            feat_parts.append(np.full(valid_rows.size, fi, dtype=int))
            item_parts.append(valid_rows)
            pot_parts.append(column.potentials[valid_rows])
            ms_parts.append(member_starts)
            me_parts.append(member_stops)
            if column.member_overrides:
                for offset, row in enumerate(valid_rows):
                    rows = column.member_overrides.get(int(row))
                    if rows is not None:
                        overrides[total + offset] = rows
                        if rows.size and (rows[0] < obs_lo or rows[-1] >= obs_hi):
                            slices_cover_members = False
            if slices_cover_members:
                ranged = member_stops > member_starts
                if ((member_starts[ranged] < obs_lo)
                        | (member_stops[ranged] > obs_hi)).any():
                    slices_cover_members = False
            total += int(valid_rows.size)
        track_factor_slices[track.track_id] = (track_start, total)

    _concat = concat_arrays
    columns = CompiledColumns(
        table=table,
        matrix=matrix,
        features=active,
        factor_feature=_concat(feat_parts, int),
        factor_item=_concat(item_parts, int),
        potentials=_concat(pot_parts, float),
        member_start=_concat(ms_parts, int),
        member_stop=_concat(me_parts, int),
        member_overrides=overrides,
        track_order=[t.track_id for t in scene.tracks],
        track_factor_slices=track_factor_slices,
        track_slices_cover_members=slices_cover_members,
    )
    if (columns.potentials < 0).any():
        bad = float(columns.potentials[columns.potentials < 0][0])
        raise ValueError(f"potential must be non-negative, got {bad}")
    return CompiledScene(
        scene=scene,
        context=ctx,
        tracks={t.track_id: t for t in scene.tracks},
        columns=columns,
    )


def _column_potentials(
    feature: Feature,
    column: FeatureColumn,
    learned: LearnedModel | None,
    aof: AOF,
) -> np.ndarray:
    """AOF-transformed potentials for every row of a column (NaN = skip)."""
    out = np.full(len(column), np.nan)
    valid_rows = np.flatnonzero(column.valid)
    if valid_rows.size == 0:
        return out
    if feature.learnable:
        # Filtered out in _compile_columnar when learned is None.
        values = column.values[valid_rows]
        groups = [column.groups[r] for r in valid_rows]
        likelihoods = learned.likelihood_batch(feature, values, groups)
        # NaN marks "no distribution for this group" — the scalar path
        # skips those items before the AOF ever runs; do the same.
        known = ~np.isnan(likelihoods)
        if not known.all():
            valid_rows = valid_rows[known]
            likelihoods = likelihoods[known]
            if valid_rows.size == 0:
                return out
    else:
        if column.values_list is not None:
            raw = [column.values_list[r] for r in valid_rows]
        else:
            raw = column.values[valid_rows]
        likelihoods = feature.manual_potential_batch(raw)
    items = None
    if not aof.item_free:
        items = [column.item_at(int(r)) for r in valid_rows]
    out[valid_rows] = aof.apply_batch(likelihoods, items)
    return out


# ----------------------------------------------------------------------
# Delta recompilation substrate: splice per-track compiles into a scene.
# ----------------------------------------------------------------------
def splice_compiled(
    scene: Scene,
    segments: list[CompiledScene],
    context: FeatureContext | None = None,
) -> CompiledScene:
    """Concatenate per-track columnar compiles into one compiled scene.

    ``segments`` are vectorized :func:`compile_scene` results covering
    ``scene.tracks`` in order (one single-track compile per track, in
    practice — see :class:`repro.serving.SceneSession`). Because both the
    observation table and the factor store are track-major with
    contiguous per-track ranges, splicing is pure array concatenation
    with offset shifts: no feature is re-extracted and no density is
    re-evaluated. The result is a first-class :class:`CompiledScene` —
    scoring, factor names, and lazy graph materialization all behave
    exactly as if the whole scene had been compiled at once.

    Requires every feature to be track-local (its factors attach only to
    observations of their own track) — true of the entire built-in
    library. A custom cross-track ``observations_of`` cannot even
    compile per-track and raises during segment compilation.
    """
    ctx = context or FeatureContext.from_scene(scene)
    if not segments:
        if scene.tracks:
            raise ValueError(
                f"no segments given for scene with {len(scene.tracks)} tracks"
            )
        table = ObservationTable(scene)
        matrix = FeatureMatrix(scene=scene, context=ctx, table=table)
        empty = np.empty(0, dtype=int)
        columns = CompiledColumns(
            table=table, matrix=matrix, features=[],
            factor_feature=empty, factor_item=empty,
            potentials=np.empty(0, dtype=float),
            member_start=empty, member_stop=empty,
            member_overrides={}, track_order=[], track_factor_slices={},
        )
        return CompiledScene(scene=scene, context=ctx, tracks={}, columns=columns)

    parts = [s.columns for s in segments]
    if any(p is None for p in parts):
        raise ValueError("splice_compiled requires vectorized (columnar) segments")
    features = parts[0].features
    for p in parts[1:]:
        if [f.name for f in p.features] != [f.name for f in features]:
            raise ValueError("segments disagree on active features")

    # Merged table and matrix are lazy views: ranking never touches the
    # merged per-observation arrays, so the splice stays O(factors) with
    # no per-observation work for unchanged tracks.
    table = SplicedTable(scene, [p.table for p in parts])
    matrix = SplicedMatrix(scene, ctx, table, [p.matrix for p in parts])

    obs_offsets = np.cumsum([0] + [p.table.n_obs for p in parts])
    factor_offsets = np.cumsum([0] + [p.n_factors for p in parts])
    # factor_item indexes rows within a feature's column; offsets are
    # cumulative *column lengths* per segment (equal to per-kind item
    # counts for columnar columns, but a fallback column with a custom
    # ``items_of`` may carry fewer rows than the table has items).
    # ``per_feature[fi, i]`` is feature fi's item offset in segment i.
    if features:
        col_lens = np.asarray(
            [
                [len(p.matrix.columns[f.name]) for p in parts]
                for f in features
            ],
            dtype=int,
        )
        per_feature = np.concatenate(
            [np.zeros((len(features), 1), dtype=int),
             np.cumsum(col_lens, axis=1)],
            axis=1,
        )
    else:
        per_feature = np.empty((0, len(parts) + 1), dtype=int)
    item_parts = []
    for i, p in enumerate(parts):
        if p.factor_feature.size:
            item_parts.append(p.factor_item + per_feature[p.factor_feature, i])
        else:
            item_parts.append(p.factor_item)

    _concat = concat_arrays

    overrides: dict[int, np.ndarray] = {}
    track_factor_slices: dict[str, tuple[int, int]] = {}
    for p, f_off, r_off in zip(parts, factor_offsets, obs_offsets):
        for i, rows in p.member_overrides.items():
            overrides[i + int(f_off)] = rows + int(r_off)
        for tid, (start, stop) in p.track_factor_slices.items():
            track_factor_slices[tid] = (start + int(f_off), stop + int(f_off))

    columns = CompiledColumns(
        table=table,
        matrix=matrix,
        features=features,
        factor_feature=_concat([p.factor_feature for p in parts], int),
        factor_item=_concat(item_parts, int),
        potentials=_concat([p.potentials for p in parts], float),
        member_start=_concat(
            [p.member_start + off for p, off in zip(parts, obs_offsets)], int
        ),
        member_stop=_concat(
            [p.member_stop + off for p, off in zip(parts, obs_offsets)], int
        ),
        member_overrides=overrides,
        track_order=[t.track_id for t in scene.tracks],
        track_factor_slices=track_factor_slices,
        track_slices_cover_members=all(p.track_slices_cover_members for p in parts),
    )
    return CompiledScene(
        scene=scene,
        context=ctx,
        tracks={t.track_id: t for t in scene.tracks},
        columns=columns,
    )


# ----------------------------------------------------------------------
# Scalar reference path: the executable specification.
# ----------------------------------------------------------------------
def _compile_scalar(
    scene: Scene,
    features: list[Feature],
    learned: LearnedModel | None,
    aof_map: Mapping[str, AOF],
    identity: AOF,
    ctx: FeatureContext,
) -> CompiledScene:
    graph = FactorGraph()
    compiled = CompiledScene(scene=scene, context=ctx, graph=graph)

    for track in scene.tracks:
        compiled.tracks[track.track_id] = track
        for obs in track.observations:
            graph.add_variable(obs.obs_id, payload=obs)

    for track in scene.tracks:
        for feature in features:
            aof = aof_map.get(feature.name, identity)
            for idx, item in enumerate(feature.items_of(track)):
                potential = _item_potential(feature, item, ctx, learned, aof)
                if potential is None:
                    continue
                member_obs = feature.observations_of(item)
                if not member_obs:
                    continue
                name = f"{feature.name}@{track.track_id}#{idx}"
                factor = PotentialFactor(potential, feature.name, item=item)
                graph.add_factor(
                    name, [o.obs_id for o in member_obs], payload=factor
                )
                compiled.factors[name] = factor

    return compiled


def _item_potential(
    feature: Feature,
    item,
    ctx: FeatureContext,
    learned: LearnedModel | None,
    aof: AOF,
) -> float | None:
    """The AOF-transformed potential of one (feature, item) pair."""
    if feature.learnable:
        if learned is None:
            return None
        likelihood = learned.likelihood(feature, item, ctx)
        if likelihood is None:
            return None
    else:
        value = feature.compute(item, ctx)
        if value is None:
            return None
        likelihood = feature.manual_potential(value)
    return aof(likelihood, item)
