"""Compiling scenes into factor graphs (§4.3).

"To compile a scene, Fixy will create nodes for each observation and
feature distribution. Then, Fixy will create edges between each feature
distribution and the observation it applies over. If a feature
distribution applies to a group of observations (e.g., an observation
bundle or track), Fixy will create one edge between each observation in
the group and the feature distribution."

The compiled graph is the scoring substrate: a component's score is read
off the factors adjacent to its observations (:mod:`repro.core.scoring`).
Factor potentials are evaluated eagerly at compile time — features and
learned distributions are deterministic, and the paper's workloads score
every component anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.core.aof import AOF, IdentityAOF
from repro.core.features import Feature, FeatureContext
from repro.core.learning import LearnedModel
from repro.core.model import Observation, ObservationBundle, Scene, Track
from repro.factorgraph import Factor, FactorGraph

__all__ = ["PotentialFactor", "CompiledScene", "compile_scene"]


class PotentialFactor(Factor):
    """A factor with a fixed, precomputed potential.

    Compiled LOA graphs condition on the observed data, so each feature
    distribution contributes a constant potential; the graph structure
    still matters for normalization and component queries.
    """

    def __init__(self, value: float, feature_name: str, item=None):
        if value < 0:
            raise ValueError(f"potential must be non-negative, got {value}")
        self.value = float(value)
        self.feature_name = feature_name
        self.item = item

    def evaluate(self, assignment: Mapping[Hashable, object] = None) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"PotentialFactor({self.feature_name!r}, {self.value:.4g})"


@dataclass
class CompiledScene:
    """A scene compiled to a factor graph, with item↔node indexes."""

    scene: Scene
    context: FeatureContext
    graph: FactorGraph
    #: factor node name -> PotentialFactor (same object as the payload)
    factors: dict[str, PotentialFactor] = field(default_factory=dict)
    #: track id -> track object (convenience)
    tracks: dict[str, Track] = field(default_factory=dict)

    def factors_of_observations(self, observations: list[Observation]) -> list[str]:
        """Names of all factor nodes adjacent to any of ``observations``,
        each counted once (deduplicated, insertion-ordered)."""
        seen: dict[str, None] = {}
        for obs in observations:
            if not self.graph.has_variable(obs.obs_id):
                continue
            for node in self.graph.factors_of(obs.obs_id):
                seen.setdefault(node.name, None)
        return list(seen)


def compile_scene(
    scene: Scene,
    features: list[Feature],
    learned: LearnedModel | None = None,
    aofs: Mapping[str, AOF] | None = None,
    context: FeatureContext | None = None,
) -> CompiledScene:
    """Compile a scene + features (+ learned distributions) into a graph.

    Args:
        scene: The associated scene to compile.
        features: Feature set (learned features need ``learned``).
        learned: Fitted distributions from
            :class:`~repro.core.learning.FeatureDistributionLearner`.
            Learnable features without a fitted distribution contribute no
            factors (with a silent skip, matching the fallback semantics
            of §5.2's "default hyperparameters work in all cases").
        aofs: Optional per-feature AOF, keyed by feature name. Features
            without an entry use the identity AOF.
        context: Feature context; derived from the scene when omitted.

    Returns:
        The compiled scene with one variable node per observation and one
        factor node per applicable (feature, item) pair.
    """
    ctx = context or FeatureContext.from_scene(scene)
    aof_map = dict(aofs or {})
    identity = IdentityAOF()

    graph = FactorGraph()
    compiled = CompiledScene(scene=scene, context=ctx, graph=graph)

    for track in scene.tracks:
        compiled.tracks[track.track_id] = track
        for obs in track.observations:
            graph.add_variable(obs.obs_id, payload=obs)

    for track in scene.tracks:
        for feature in features:
            aof = aof_map.get(feature.name, identity)
            for idx, item in enumerate(feature.items_of(track)):
                potential = _item_potential(feature, item, ctx, learned, aof)
                if potential is None:
                    continue
                member_obs = feature.observations_of(item)
                if not member_obs:
                    continue
                name = f"{feature.name}@{track.track_id}#{idx}"
                factor = PotentialFactor(potential, feature.name, item=item)
                graph.add_factor(
                    name, [o.obs_id for o in member_obs], payload=factor
                )
                compiled.factors[name] = factor

    return compiled


def _item_potential(
    feature: Feature,
    item,
    ctx: FeatureContext,
    learned: LearnedModel | None,
    aof: AOF,
) -> float | None:
    """The AOF-transformed potential of one (feature, item) pair."""
    if feature.learnable:
        if learned is None:
            return None
        likelihood = learned.likelihood(feature, item, ctx)
        if likelihood is None:
            return None
    else:
        value = feature.compute(item, ctx)
        if value is None:
            return None
        likelihood = feature.manual_potential(value)
    return aof(likelihood, item)
