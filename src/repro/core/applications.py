"""The three applications of §7, packaged as ready-to-run pipelines.

1. :class:`MissingTrackFinder` — tracks humans missed entirely. The AOF
   zeroes any track containing a human proposal; remaining (model-only)
   tracks are ranked by plausibility — "consistent predictions from the
   model are likely to be correct".
2. :class:`MissingObservationFinder` — frames humans skipped inside
   otherwise-labeled tracks. The AOF zeroes bundles containing a human
   proposal and tracks with no human proposal at all; remaining bundles
   are ranked by plausibility.
3. :class:`ModelErrorFinder` — erroneous ML predictions with no human
   labels assumed. The AOF *inverts* each learned feature's likelihood,
   so implausible tracks rank first.

Each finder owns a :class:`~repro.core.engine.Fixy` instance configured
with the matching Table 2 feature subset and AOFs, exposing ``fit`` /
``rank``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.aof import AOF, InvertAOF, ZeroIfAOF
from repro.core.engine import Fixy
from repro.core.features import Feature
from repro.core.library import default_features, model_error_features
from repro.core.model import ObservationBundle, Scene, Track
from repro.core.scoring import ScoredItem

__all__ = [
    "MissingTrackFinder",
    "MissingObservationFinder",
    "ModelErrorFinder",
    "top_k_per_class",
]


def top_k_per_class(
    ranked: list[ScoredItem], k: int, class_of: Callable[[ScoredItem], str] | None = None
) -> list[ScoredItem]:
    """Keep the top ``k`` items of each object class, preserving order.

    The recall experiment of §8.2 audits "the top 10 ranked errors
    per-class"; this is that selection.
    """
    get_class = class_of or _default_class_of
    counts: dict[str, int] = {}
    out = []
    for item in ranked:
        cls = get_class(item)
        if counts.get(cls, 0) < k:
            counts[cls] = counts.get(cls, 0) + 1
            out.append(item)
    return out


def _default_class_of(scored: ScoredItem) -> str:
    item = scored.item
    if isinstance(item, Track):
        return item.majority_class()
    if isinstance(item, ObservationBundle):
        return item.representative().object_class
    return item.object_class


class MissingTrackFinder:
    """Find tracks entirely missed by human labelers (§7, §8.2).

    Extra keyword arguments (``vectorized``, ``fast_density``,
    ``n_jobs``, ...) pass through to :class:`~repro.core.engine.Fixy`.
    """

    def __init__(
        self,
        features: list[Feature] | None = None,
        min_samples: int = 8,
        **fixy_options,
    ):
        feats = features if features is not None else default_features()
        aofs: dict[str, AOF] = {}
        # "The AOF zeros out any track that contains any human proposals."
        # Attached to every track-level feature so labeled tracks score -inf;
        # the engine-level filter below also drops them outright (equivalent
        # and cheaper).
        for feature in feats:
            if feature.kind == "track":
                aofs[feature.name] = ZeroIfAOF(
                    lambda track: track.has_human, label="track_has_human"
                )
        self.fixy = Fixy(feats, aofs=aofs, min_samples=min_samples, **fixy_options)

    def fit(self, historical_scenes: list[Scene]) -> "MissingTrackFinder":
        self.fixy.fit(historical_scenes)
        return self

    def rank(
        self, scenes: Scene | list[Scene], top_k: int | None = None
    ) -> list[ScoredItem]:
        """Model-only tracks ranked most-plausible first."""
        return self.fixy.rank(
            scenes,
            "tracks",
            filt=lambda track: not track.has_human and track.has_model,
            top_k=top_k,
        )


class MissingObservationFinder:
    """Find missing labels within human-labeled tracks (§7, §8.3).

    Extra keyword arguments pass through to
    :class:`~repro.core.engine.Fixy`.
    """

    def __init__(
        self,
        features: list[Feature] | None = None,
        min_samples: int = 8,
        **fixy_options,
    ):
        feats = features if features is not None else default_features()
        self.fixy = Fixy(feats, min_samples=min_samples, **fixy_options)

    def fit(self, historical_scenes: list[Scene]) -> "MissingObservationFinder":
        self.fixy.fit(historical_scenes)
        return self

    def rank(
        self, scenes: Scene | list[Scene], top_k: int | None = None
    ) -> list[ScoredItem]:
        """Model-only bundles inside human-labeled tracks, best first.

        Implements the §8.3 AOF: "We set the probability of an observation
        in a bundle with a human proposal to 0. We set the probability of
        any track without a human proposal to 0."
        """

        def keep(bundle: ObservationBundle, track: Track) -> bool:
            return not bundle.has_human and bundle.has_model and track.has_human

        return self.fixy.rank(scenes, "bundles", filt=keep, top_k=top_k)


class ModelErrorFinder:
    """Find erroneous ML model predictions (§7, §8.4)."""

    def __init__(
        self,
        features: list[Feature] | None = None,
        min_samples: int = 8,
        **fixy_options,
    ):
        feats = features if features is not None else model_error_features()
        # "The AOF inverts the probability of each feature, with the goal
        # of inverting the ranking of the tracks that are likely to be
        # correct and the tracks that are likely to be incorrect."
        aofs: dict[str, AOF] = {
            f.name: InvertAOF() for f in feats if f.learnable
        }
        self.fixy = Fixy(feats, aofs=aofs, min_samples=min_samples, **fixy_options)

    def fit(self, historical_scenes: list[Scene]) -> "ModelErrorFinder":
        self.fixy.fit(historical_scenes)
        return self

    def rank(
        self,
        scenes: Scene | list[Scene],
        top_k: int | None = None,
        exclude: Callable[[Track], bool] | None = None,
    ) -> list[ScoredItem]:
        """Model tracks ranked most-suspicious first.

        Args:
            exclude: Optional predicate dropping tracks before ranking —
                §8.4 excludes errors already caught by the ad-hoc
                assertions to measure *novel* errors.
        """

        def keep(track: Track) -> bool:
            if not track.has_model:
                return False
            if exclude is not None and exclude(track):
                return False
            return True

        return self.fixy.rank(scenes, "tracks", filt=keep, top_k=top_k)
