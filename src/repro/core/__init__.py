"""LOA core: data model, features, AOFs, learning, compilation, scoring."""

from repro.core.aof import (
    AOF,
    ComposeAOF,
    IdentityAOF,
    InvertAOF,
    KeepIfAOF,
    ZeroIfAOF,
)
from repro.core.applications import (
    MissingObservationFinder,
    MissingTrackFinder,
    ModelErrorFinder,
    top_k_per_class,
)
from repro.core.columnar import FeatureColumn, FeatureMatrix, ObservationTable
from repro.core.compile import (
    CompiledColumns,
    CompiledScene,
    PotentialFactor,
    compile_scene,
)
from repro.core.engine import Fixy
from repro.core.fusion import ClassPosterior, infer_track_class, uniform_confusion
from repro.core.features import (
    BundleFeature,
    Feature,
    FeatureContext,
    ObservationFeature,
    TrackFeature,
    TransitionFeature,
)
from repro.core.learning import (
    FeatureDistributionLearner,
    LearnedFeatureDistribution,
    LearnedModel,
)
from repro.core.library import (
    AspectRatioFeature,
    ClassAgreementFeature,
    HeadingAlignmentFeature,
    CountFeature,
    DistanceFeature,
    ModelOnlyFeature,
    TrackLengthFeature,
    VelocityFeature,
    VolumeFeature,
    VolumeRatioFeature,
    YawRateFeature,
    default_features,
    model_error_features,
)
from repro.core.model import (
    SOURCE_AUDITOR,
    SOURCE_HUMAN,
    SOURCE_MODEL,
    Observation,
    ObservationBundle,
    Scene,
    Track,
)
from repro.core.scoring import ScoredItem, Scorer

__all__ = [
    "AOF",
    "AspectRatioFeature",
    "HeadingAlignmentFeature",
    "BundleFeature",
    "ClassAgreementFeature",
    "ClassPosterior",
    "CompiledColumns",
    "CompiledScene",
    "ComposeAOF",
    "CountFeature",
    "DistanceFeature",
    "Feature",
    "FeatureColumn",
    "FeatureContext",
    "FeatureDistributionLearner",
    "FeatureMatrix",
    "Fixy",
    "ObservationTable",
    "IdentityAOF",
    "InvertAOF",
    "KeepIfAOF",
    "LearnedFeatureDistribution",
    "LearnedModel",
    "MissingObservationFinder",
    "MissingTrackFinder",
    "ModelErrorFinder",
    "ModelOnlyFeature",
    "Observation",
    "ObservationBundle",
    "ObservationFeature",
    "PotentialFactor",
    "SOURCE_AUDITOR",
    "SOURCE_HUMAN",
    "SOURCE_MODEL",
    "Scene",
    "ScoredItem",
    "Scorer",
    "Track",
    "TrackFeature",
    "TrackLengthFeature",
    "TransitionFeature",
    "VelocityFeature",
    "VolumeFeature",
    "VolumeRatioFeature",
    "YawRateFeature",
    "ZeroIfAOF",
    "compile_scene",
    "infer_track_class",
    "uniform_confusion",
    "default_features",
    "model_error_features",
    "top_k_per_class",
]
