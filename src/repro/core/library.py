"""Built-in feature library (the paper's Table 2 plus extensions).

=============  ==========  ==================================================
Name           Type        Description
=============  ==========  ==================================================
volume         Obs.        Class-conditional box volume (learned)
distance       Obs.        Distance to AV (manual severity prior)
model_only     Bundle      Selects bundles with model predictions only
velocity       Trans.      Class-conditional object velocity (learned)
count          Track       Filters tracks with two or fewer observations
=============  ==========  ==================================================

Extensions beyond Table 2 (used by §8.4 and the ablations):

- ``class_agreement`` — Bernoulli over "all observations in a bundle agree
  on class" (the §5.1 example of a bundle feature);
- ``track_length`` — learned distribution over a track's observation count
  (the "track feature over the total number of observations" of §8.4);
- ``volume_ratio`` — learned distribution over the log ratio of adjacent
  box volumes, which catches Figure-9-style ghosts whose boxes overlap
  smoothly but pump in size;
- ``yaw_rate`` — learned distribution over heading change per second.

Each feature is a handful of lines, matching the paper's claim that
"each feature required fewer than 6 lines of code to implement" — the
``compute`` bodies here are exactly that size.

Every library feature also implements ``columnar_values`` — the same
computation expressed as array math over an
:class:`~repro.core.columnar.ObservationTable` — so the vectorized
compile pipeline extracts a whole scene's worth of values per feature in
a few NumPy calls. ``compute`` remains the executable reference each
columnar implementation must match to floating-point round-off.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.features import (
    BundleFeature,
    FeatureContext,
    ObservationFeature,
    TrackFeature,
    TransitionFeature,
)
from repro.core.model import Observation, ObservationBundle, Track
from repro.geometry.box import wrap_angle, wrap_angles

__all__ = [
    "AspectRatioFeature",
    "HeadingAlignmentFeature",
    "VolumeAspectFeature",
    "VolumeFeature",
    "DistanceFeature",
    "ModelOnlyFeature",
    "VelocityFeature",
    "CountFeature",
    "ClassAgreementFeature",
    "TrackLengthFeature",
    "VolumeRatioFeature",
    "YawRateFeature",
    "default_features",
    "model_error_features",
]


class VolumeFeature(ObservationFeature):
    """Class-conditional box volume (Table 2, learned via KDE)."""

    name = "volume"
    learnable = True
    fitter = "kde"
    class_conditional = True
    supports_columnar = True

    def compute(self, obs: Observation, context: FeatureContext):
        return obs.box.volume

    def columnar_values(self, table, context: FeatureContext):
        return table.length * table.width * table.height


class DistanceFeature(ObservationFeature):
    """Distance to the AV, as a manual severity prior (Table 2).

    Closer objects matter more ("the most important to detect" are nearby
    vehicles, Figure 8), so the potential decays exponentially with
    distance: an error 10 m away outranks the same error 50 m away.
    """

    name = "distance"
    learnable = False
    supports_columnar = True

    def __init__(self, scale_m: float = 30.0):
        if scale_m <= 0:
            raise ValueError(f"scale_m must be positive, got {scale_m}")
        self.scale_m = scale_m

    def compute(self, obs: Observation, context: FeatureContext):
        ego = context.ego_pose_at(obs.frame)
        return obs.box.distance_to([ego.x, ego.y])

    def columnar_values(self, table, context: FeatureContext):
        frames = np.unique(table.frame)
        poses = [context.ego_pose_at(int(f)) for f in frames]
        px = np.asarray([p.x for p in poses], dtype=float)
        py = np.asarray([p.y for p in poses], dtype=float)
        idx = np.searchsorted(frames, table.frame)
        return np.hypot(table.x - px[idx], table.y - py[idx])

    def manual_potential(self, value) -> float:
        return math.exp(-float(value) / self.scale_m)

    def manual_potential_batch(self, values) -> np.ndarray:
        return np.exp(-np.asarray(values, dtype=float) / self.scale_m)


class ModelOnlyFeature(BundleFeature):
    """Selects bundles containing only model predictions (Table 2).

    Potential 1 for model-only bundles, 0 otherwise — composed with the
    missing-track/missing-observation AOFs it restricts the search to
    unlabeled model detections.
    """

    name = "model_only"
    learnable = False
    supports_columnar = True

    def compute(self, bundle: ObservationBundle, context: FeatureContext):
        return 1.0 if bundle.sources == {"model"} else 0.0

    def columnar_values(self, table, context: FeatureContext):
        sizes = table.bundle_stop - table.bundle_start
        # Per-bundle model counts via prefix sums: robust to empty
        # bundles, which reduceat segment indexing is not. An empty
        # bundle has sources == set() != {"model"} and scores 0.
        prefix = np.concatenate([[0], np.cumsum(table.is_model.astype(np.intp))])
        model_count = prefix[table.bundle_stop] - prefix[table.bundle_start]
        return np.where((sizes > 0) & (model_count == sizes), 1.0, 0.0)


class VelocityFeature(TransitionFeature):
    """Class-conditional instantaneous velocity (Table 2, learned).

    Estimated from the center offset of the representative boxes of
    adjacent bundles, divided by the elapsed time (§5.1: "a feature could
    specify the velocity estimated by box center offset").
    """

    name = "velocity"
    learnable = True
    fitter = "kde"
    class_conditional = True
    supports_columnar = True

    def compute(self, transition, context: FeatureContext):
        before, after = transition
        gap = after.frame - before.frame
        if gap <= 0:
            return None
        offset = before.representative().box.distance_to_box(after.representative().box)
        return offset / (gap * context.dt)

    def columnar_values(self, table, context: FeatureContext):
        rb = table.bundle_rep[table.trans_before]
        ra = table.bundle_rep[table.trans_after]
        gap = table.bundle_frame[table.trans_after] - table.bundle_frame[table.trans_before]
        offset = np.hypot(table.x[rb] - table.x[ra], table.y[rb] - table.y[ra])
        with np.errstate(divide="ignore", invalid="ignore"):
            out = offset / (gap * context.dt)
        return np.where(gap > 0, out, np.nan)


class CountFeature(TrackFeature):
    """Filters tracks with two or fewer observations (Table 2, manual).

    Single- or double-observation tracks carry too little evidence to
    audit; their potential is zeroed so they never rank.
    """

    name = "count"
    learnable = False

    supports_columnar = True

    def __init__(self, min_observations: int = 3):
        if min_observations < 1:
            raise ValueError(f"min_observations must be >= 1, got {min_observations}")
        self.min_observations = min_observations

    def compute(self, track: Track, context: FeatureContext):
        return 1.0 if track.n_observations >= self.min_observations else 0.0

    def columnar_values(self, table, context: FeatureContext):
        counts = np.asarray([e - s for s, e in table.track_obs_slices])
        return (counts >= self.min_observations).astype(float)


class ClassAgreementFeature(BundleFeature):
    """Bernoulli class agreement inside a bundle (§5.1 example).

    Returns 0 when all member observations agree on class, 1 otherwise;
    the learned Bernoulli then makes disagreement as unlikely as it is in
    the historical data.
    """

    name = "class_agreement"
    learnable = True
    fitter = "bernoulli"
    supports_columnar = True

    def compute(self, bundle: ObservationBundle, context: FeatureContext):
        if len(bundle) < 2:
            return None
        return 0.0 if bundle.classes_agree() else 1.0

    def columnar_values(self, table, context: FeatureContext):
        sizes = table.bundle_stop - table.bundle_start
        # A bundle agrees iff every member matches its first member's
        # class; counting mismatches via prefix sums stays correct for
        # empty bundles (unlike reduceat segment indexing).
        first_of_row = np.repeat(table.bundle_start, sizes)
        mismatch = table.class_codes != table.class_codes[first_of_row]
        prefix = np.concatenate([[0], np.cumsum(mismatch.astype(np.intp))])
        disagree = (prefix[table.bundle_stop] - prefix[table.bundle_start]) > 0
        return np.where(sizes < 2, np.nan, np.where(disagree, 1.0, 0.0))


class TrackLengthFeature(TrackFeature):
    """Learned distribution over a track's total observation count (§8.4)."""

    name = "track_length"
    learnable = True
    fitter = "kde"
    supports_columnar = True

    def compute(self, track: Track, context: FeatureContext):
        return float(track.n_observations)

    def columnar_values(self, table, context: FeatureContext):
        return np.asarray([float(e - s) for s, e in table.track_obs_slices])


class VolumeRatioFeature(TransitionFeature):
    """Log ratio of adjacent box volumes (extension).

    Real objects have fixed physical dimensions, so adjacent volumes agree
    up to labeling jitter; Figure-9-style coherent ghosts pump their box
    size frame to frame and land far in the tails of this distribution.
    """

    name = "volume_ratio"
    learnable = True
    fitter = "kde"
    supports_columnar = True

    def compute(self, transition, context: FeatureContext):
        before, after = transition
        v0 = before.representative().box.volume
        v1 = after.representative().box.volume
        if v0 <= 0 or v1 <= 0:
            return None
        return math.log(v1 / v0)

    def columnar_values(self, table, context: FeatureContext):
        volume = table.length * table.width * table.height
        v0 = volume[table.bundle_rep[table.trans_before]]
        v1 = volume[table.bundle_rep[table.trans_after]]
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.log(v1 / v0)
        return np.where((v0 > 0) & (v1 > 0), out, np.nan)


class YawRateFeature(TransitionFeature):
    """Heading change per second between adjacent bundles (extension)."""

    name = "yaw_rate"
    learnable = True
    fitter = "kde"
    supports_columnar = True

    def compute(self, transition, context: FeatureContext):
        before, after = transition
        gap = after.frame - before.frame
        if gap <= 0:
            return None
        dyaw = wrap_angle(
            after.representative().box.yaw - before.representative().box.yaw
        )
        return dyaw / (gap * context.dt)

    def columnar_values(self, table, context: FeatureContext):
        rb = table.bundle_rep[table.trans_before]
        ra = table.bundle_rep[table.trans_after]
        gap = table.bundle_frame[table.trans_after] - table.bundle_frame[table.trans_before]
        dyaw = wrap_angles(table.yaw[ra] - table.yaw[rb])
        with np.errstate(divide="ignore", invalid="ignore"):
            out = dyaw / (gap * context.dt)
        return np.where(gap > 0, out, np.nan)


class AspectRatioFeature(ObservationFeature):
    """Class-conditional footprint aspect ratio length/width (extension).

    Cars are ~2.4:1, pedestrians ~1:1; a box whose aspect ratio is
    atypical for its class is a likely annotation or prediction error
    even when its volume is plausible.
    """

    name = "aspect_ratio"
    learnable = True
    fitter = "kde"
    class_conditional = True
    supports_columnar = True

    def compute(self, obs: Observation, context: FeatureContext):
        return obs.box.length / obs.box.width

    def columnar_values(self, table, context: FeatureContext):
        return table.length / table.width


class VolumeAspectFeature(ObservationFeature):
    """Joint class-conditional (volume, aspect-ratio) feature (extension).

    The first vector-valued (d=2) library feature: it exercises the KDE
    product-kernel path — and the whole columnar batch pipeline — at
    ``d > 1``. Jointly modeling volume and footprint aspect catches
    boxes that are marginally plausible on each axis but jointly wrong
    (e.g. a car-sized volume stretched to a truck-like footprint):
    the 2-D density is low where the marginals are not.
    """

    name = "volume_aspect"
    learnable = True
    fitter = "kde"
    class_conditional = True
    supports_columnar = True

    def compute(self, obs: Observation, context: FeatureContext):
        return (obs.box.volume, obs.box.length / obs.box.width)

    def columnar_values(self, table, context: FeatureContext):
        return np.column_stack(
            [table.length * table.width * table.height,
             table.length / table.width]
        )


class HeadingAlignmentFeature(TransitionFeature):
    """Angle between the motion direction and the box heading (extension).

    Vehicles move along their heading (or exactly against it when
    reversing), so for moving objects this angle concentrates near 0 and
    π. Ghost tracks drift in directions unrelated to their boxes' yaw.
    Slow transitions return ``None`` — below walking pace the motion
    direction is noise.
    """

    name = "heading_alignment"
    learnable = True
    fitter = "kde"
    supports_columnar = True

    def __init__(self, min_speed_mps: float = 1.0):
        if min_speed_mps <= 0:
            raise ValueError(f"min_speed_mps must be positive, got {min_speed_mps}")
        self.min_speed_mps = min_speed_mps

    def compute(self, transition, context: FeatureContext):
        before, after = transition
        gap = after.frame - before.frame
        if gap <= 0:
            return None
        b0 = before.representative().box
        b1 = after.representative().box
        dx, dy = b1.x - b0.x, b1.y - b0.y
        speed = math.hypot(dx, dy) / (gap * context.dt)
        if speed < self.min_speed_mps:
            return None
        motion_dir = math.atan2(dy, dx)
        return abs(wrap_angle(motion_dir - b0.yaw))

    def columnar_values(self, table, context: FeatureContext):
        rb = table.bundle_rep[table.trans_before]
        ra = table.bundle_rep[table.trans_after]
        gap = table.bundle_frame[table.trans_after] - table.bundle_frame[table.trans_before]
        dx, dy = table.x[ra] - table.x[rb], table.y[ra] - table.y[rb]
        with np.errstate(divide="ignore", invalid="ignore"):
            speed = np.hypot(dx, dy) / (gap * context.dt)
        value = np.abs(wrap_angles(np.arctan2(dy, dx) - table.yaw[rb]))
        return np.where((gap > 0) & (speed >= self.min_speed_mps), value, np.nan)


def default_features(include_distance: bool = True) -> list:
    """The Table 2 feature set used by the missing-track experiments."""
    features = [
        VolumeFeature(),
        ModelOnlyFeature(),
        VelocityFeature(),
        CountFeature(),
    ]
    if include_distance:
        features.insert(1, DistanceFeature())
    return features


def model_error_features() -> list:
    """The §8.4 feature set: Table 2 minus distance/model-only, plus the
    track-length feature."""
    return [
        VolumeFeature(),
        VelocityFeature(),
        CountFeature(),
        TrackLengthFeature(),
        VolumeRatioFeature(),
        YawRateFeature(),
    ]
