"""The Fixy engine: the user-facing facade.

Ties together the offline phase (learning feature distributions from
existing labeled scenes) and the online phase (compiling new scenes and
ranking potential errors), per the workflow of §3:

.. code-block:: python

    fixy = Fixy(features=default_features())
    fixy.fit(historical_scenes)                  # offline
    ranked = fixy.rank(new_scenes, "tracks",     # online
                       filt=lambda t: not t.has_human)

(The declarative equivalent — an :class:`repro.api.AuditSpec` run
through :class:`repro.api.Audit` — adds provenance and pluggable
execution backends on top of this engine.)

The online phase runs on the columnar pipeline by default
(:mod:`repro.core.columnar` / :mod:`repro.core.compile`): scenes compile
to flat potential arrays via batched density evaluation, scoring reads
those arrays directly, and — with ``fast_density`` — eligible KDEs are
served from validated log-density interpolation grids once traffic
amortizes their construction. Three engine-level layers sit on top:

- a **compiled-scene LRU cache**, so repeated queries against the same
  scene object (rank tracks, then bundles, then observations) compile
  once;
- a **multi-scene fast path**: ``rank_*`` over a scene list compiles the
  scenes through a ``concurrent.futures`` pool (``n_jobs``) and merges
  the per-scene rankings. NumPy releases the GIL inside the heavy batch
  kernels, so threads help when cores are available; the default stays
  serial because single-core containers gain nothing;
- ``vectorized=False`` switches the whole engine to the scalar
  reference pipeline for A/B verification.
"""

from __future__ import annotations

import threading
import warnings
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping

from repro.core.aof import AOF
from repro.core.compile import CompiledScene, compile_scene
from repro.core.features import Feature
from repro.core.learning import FeatureDistributionLearner, LearnedModel
from repro.core.model import Observation, ObservationBundle, Scene, Track
from repro.core.scoring import (
    ScoredItem,
    Scorer,
    merge_rankings,
    normalize_rank_kind,
)

__all__ = ["Fixy"]


class Fixy:
    """Learned observation assertions over perception scenes.

    Args:
        features: The feature set (see :mod:`repro.core.library`).
        aofs: Optional per-feature application objective functions,
            keyed by feature name.
        learn_sources: Observation sources treated as the organizational
            resource to learn from (default: human labels).
        min_samples: Minimum per-class sample count when fitting
            class-conditional distributions.
        vectorized: Compile scenes through the columnar batch pipeline
            (default) or the scalar reference loop.
        fast_density: Arm grid-accelerated density evaluation on fit
            (lazy; builds only once batch traffic amortizes it). The
            scalar path is never affected. See
            :meth:`repro.core.learning.LearnedModel.enable_fast_eval`.
        n_jobs: Worker threads for multi-scene ``rank_*`` calls. ``1``
            (default) is serial; ``None`` or ``0`` picks a small
            automatic pool.
        compile_cache_size: Compiled scenes kept in the LRU cache
            (``0`` disables caching).
    """

    def __init__(
        self,
        features: list[Feature],
        aofs: Mapping[str, AOF] | None = None,
        learn_sources: tuple[str, ...] = ("human",),
        min_samples: int = 8,
        vectorized: bool = True,
        fast_density: bool = True,
        n_jobs: int | None = 1,
        compile_cache_size: int = 16,
    ):
        if not features:
            raise ValueError("Fixy needs at least one feature")
        names = [f.name for f in features]
        duplicates = sorted(
            name for name, count in Counter(names).items() if count > 1
        )
        if duplicates:
            raise ValueError(f"duplicate feature names: {duplicates}")
        self.features = list(features)
        self.aofs = dict(aofs or {})
        self.vectorized = vectorized
        self.fast_density = fast_density
        self.n_jobs = n_jobs
        self._learner = FeatureDistributionLearner(
            self.features, sources=learn_sources, min_samples=min_samples
        )
        self.learned: LearnedModel | None = None
        #: id(scene) -> [scene, compiled, scorer-or-None]; the scene
        #: reference keeps the id stable while cached, the scorer slot
        #: memoizes the edge-table build across rank_* calls.
        self._compile_cache: OrderedDict[int, list] = OrderedDict()
        self._compile_cache_size = max(0, int(compile_cache_size))
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def fit(self, scenes: list[Scene]) -> "Fixy":
        """Learn feature distributions from historical labeled scenes."""
        if not scenes:
            raise ValueError("fit requires at least one historical scene")
        self.learned = self._learner.fit(scenes)
        if self.fast_density:
            self.learned.enable_fast_eval()
        self.clear_compile_cache()
        return self

    def warmup_fast_eval(self) -> int:
        """Build all density grids now (offline prep for serving/benchmarks).

        Returns the number of accelerated distributions; 0 when unfitted
        or ``fast_density`` is off.
        """
        if self.learned is None or not self.fast_density:
            return 0
        return self.learned.enable_fast_eval(eager=True)

    @property
    def is_fitted(self) -> bool:
        return self.learned is not None

    # ------------------------------------------------------------------
    # Serving transport: snapshot the engine's state for worker processes
    # ------------------------------------------------------------------
    def to_payload(self, include_grids: bool = True) -> dict:
        """Snapshot configuration + fitted model for transport.

        The learned model travels as its :meth:`LearnedModel.to_dict`
        form (JSON-safe; density grids included by default so receiving
        workers skip the warmup build). Features and AOFs are the live
        objects — they cross process boundaries by pickling, which
        every library feature supports.
        """
        return {
            "features": list(self.features),
            "aofs": dict(self.aofs),
            "learn_sources": tuple(self._learner.sources),
            "min_samples": self._learner.min_samples,
            "vectorized": self.vectorized,
            "fast_density": self.fast_density,
            "learned": (
                self.learned.to_dict(include_grids=include_grids)
                if self.learned is not None
                else None
            ),
        }

    @classmethod
    def from_payload(
        cls, payload: dict, compile_cache_size: int | None = None
    ) -> "Fixy":
        """Rebuild an engine from :meth:`to_payload` (worker-side)."""
        fixy = cls(
            features=payload["features"],
            aofs=payload["aofs"],
            learn_sources=tuple(payload["learn_sources"]),
            min_samples=payload["min_samples"],
            vectorized=payload["vectorized"],
            fast_density=payload["fast_density"],
            **(
                {}
                if compile_cache_size is None
                else {"compile_cache_size": compile_cache_size}
            ),
        )
        if payload["learned"] is not None:
            fixy.learned = LearnedModel.from_dict(payload["learned"])
            if fixy.fast_density:
                # Grids persisted in the payload come back ready; this
                # only arms whatever the snapshot had not built yet.
                fixy.learned.enable_fast_eval()
        return fixy

    # ------------------------------------------------------------------
    # Serving facade: incremental sessions and process sharding
    # ------------------------------------------------------------------
    def session(self, scene: Scene, session_id: str | None = None):
        """An incremental :class:`~repro.serving.session.SceneSession`
        over ``scene``, sharing this engine's features/AOFs/model.

        Session edits mutate ``scene`` in place, so every edit also
        evicts it from this engine's identity-keyed compile cache —
        ``rank_*`` on the same scene object stays fresh.
        """
        from repro.serving.session import SceneSession

        self._require_fitted()
        if not self.vectorized:
            raise ValueError(
                "sessions require the columnar pipeline; this engine was "
                "built with vectorized=False (the scalar reference path "
                "cannot be spliced incrementally)"
            )
        return SceneSession(
            scene,
            self.features,
            learned=self.learned,
            aofs=self.aofs,
            session_id=session_id,
            on_invalidate=lambda: self._evict_scene(scene),
        )

    def shard(self, n_workers: int = 2, **kwargs):
        """A :class:`~repro.serving.sharded.ShardedRanker` over this
        engine (process-pool ``rank_*`` with per-worker caches)."""
        from repro.serving.sharded import ShardedRanker

        return ShardedRanker(self, n_workers=n_workers, **kwargs)

    def _require_fitted(self) -> None:
        needs_learning = any(f.learnable for f in self.features)
        if needs_learning and not self.is_fitted:
            raise RuntimeError(
                "Fixy has learnable features but fit() has not been called"
            )

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------
    def compile(self, scene: Scene) -> CompiledScene:
        """Compile one scene into its factor graph (LRU-cached).

        The cache is keyed by scene object identity: mutate a scene
        in-place and you must call :meth:`clear_compile_cache` (or
        :meth:`fit`, which clears it) to recompile.
        """
        self._require_fitted()
        entry = self._cache_entry(scene)
        if entry is not None:
            return entry[1]
        return compile_scene(
            scene,
            self.features,
            learned=self.learned,
            aofs=self.aofs,
            vectorized=self.vectorized,
        )

    def _cache_entry(self, scene: Scene) -> list | None:
        """The cache entry for ``scene``, compiling on miss (None when
        caching is disabled)."""
        if not self._compile_cache_size:
            return None
        key = id(scene)
        with self._cache_lock:
            hit = self._compile_cache.get(key)
            if hit is not None and hit[0] is scene:
                self._compile_cache.move_to_end(key)
                return hit
        compiled = compile_scene(
            scene,
            self.features,
            learned=self.learned,
            aofs=self.aofs,
            vectorized=self.vectorized,
        )
        entry = [scene, compiled, None]
        with self._cache_lock:
            hit = self._compile_cache.get(key)
            if hit is not None and hit[0] is scene:
                # Another thread won the race; keep its entry.
                self._compile_cache.move_to_end(key)
                return hit
            self._compile_cache[key] = entry
            self._compile_cache.move_to_end(key)
            while len(self._compile_cache) > self._compile_cache_size:
                self._compile_cache.popitem(last=False)
        return entry

    def clear_compile_cache(self) -> None:
        """Drop all cached compiled scenes."""
        with self._cache_lock:
            self._compile_cache.clear()

    def _evict_scene(self, scene: Scene) -> None:
        """Drop one scene's cache entry (it was mutated in place)."""
        with self._cache_lock:
            self._compile_cache.pop(id(scene), None)

    def scorer(self, scene: Scene) -> Scorer:
        """A scorer for one scene (compile and scorer both LRU-cached)."""
        self._require_fitted()
        entry = self._cache_entry(scene)
        if entry is None:
            return Scorer(self.compile(scene))
        if entry[2] is None:
            entry[2] = Scorer(entry[1])
        return entry[2]

    def _scorers(
        self, scenes: list[Scene], n_jobs: int | None = None
    ) -> list[Scorer]:
        """Build scorers for many scenes (optionally in parallel)."""
        jobs = self.n_jobs if n_jobs is None else n_jobs
        if jobs in (None, 0):
            jobs = min(4, len(scenes))
        if len(scenes) <= 1 or jobs <= 1:
            return [self.scorer(scene) for scene in scenes]
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(self.scorer, scenes))

    def rank(
        self,
        scenes: Scene | list[Scene],
        kind: str = "tracks",
        filt=None,
        top_k: int | None = None,
        n_jobs: int | None = None,
    ) -> list[ScoredItem]:
        """Rank components of ``kind`` across scenes, best score first.

        The one ranking entry point: ``kind`` is ``"tracks"``,
        ``"bundles"``, or ``"observations"`` (singular accepted;
        anything else raises
        :class:`~repro.core.scoring.UnknownRankKindError` before any
        scene compiles). ``filt`` is the kind's filter callable —
        ``(track)``, ``(bundle, track)``, or ``(observation)``
        respectively. ``n_jobs`` overrides the engine's thread count
        for this call (``None`` keeps the engine default).

        The declarative form of this call is :class:`repro.api.AuditSpec`
        executed through :class:`repro.api.Audit`, which adds result
        provenance and pluggable execution backends.
        """
        kind = normalize_rank_kind(kind)
        blocks = [
            scorer.rank(kind, filt)
            for scorer in self._scorers(_as_list(scenes), n_jobs)
        ]
        return merge_rankings(blocks, top_k)

    def audit(self, spec, scenes=None, backend: str | None = None, **backend_options):
        """Execute a declarative :class:`repro.api.AuditSpec` on this
        fitted engine, returning a typed :class:`repro.api.AuditResult`.

        Convenience for ``Audit(spec, fixy=self).run(...)``; see
        :mod:`repro.api` for the full surface.
        """
        from repro.api import Audit

        with Audit(spec, fixy=self) as audit:
            return audit.run(scenes=scenes, backend=backend, **backend_options)

    def _deprecated_rank(self, method: str, kind: str):
        warnings.warn(
            f"Fixy.{method} is deprecated; use Fixy.rank(scenes, "
            f"kind={kind!r}) or the declarative repro.api Audit API",
            DeprecationWarning,
            stacklevel=3,
        )

    def rank_tracks(
        self,
        scenes: Scene | list[Scene],
        track_filter: Callable[[Track], bool] | None = None,
        top_k: int | None = None,
    ) -> list[ScoredItem]:
        """Deprecated: use :meth:`rank` with ``kind="tracks"``."""
        self._deprecated_rank("rank_tracks", "tracks")
        return self.rank(scenes, "tracks", track_filter, top_k)

    def rank_bundles(
        self,
        scenes: Scene | list[Scene],
        bundle_filter: Callable[[ObservationBundle, Track], bool] | None = None,
        top_k: int | None = None,
    ) -> list[ScoredItem]:
        """Deprecated: use :meth:`rank` with ``kind="bundles"``."""
        self._deprecated_rank("rank_bundles", "bundles")
        return self.rank(scenes, "bundles", bundle_filter, top_k)

    def rank_observations(
        self,
        scenes: Scene | list[Scene],
        obs_filter: Callable[[Observation], bool] | None = None,
        top_k: int | None = None,
    ) -> list[ScoredItem]:
        """Deprecated: use :meth:`rank` with ``kind="observations"``."""
        self._deprecated_rank("rank_observations", "observations")
        return self.rank(scenes, "observations", obs_filter, top_k)


def _as_list(scenes: Scene | list[Scene]) -> list[Scene]:
    if isinstance(scenes, Scene):
        return [scenes]
    return list(scenes)
