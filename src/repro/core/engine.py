"""The Fixy engine: the user-facing facade.

Ties together the offline phase (learning feature distributions from
existing labeled scenes) and the online phase (compiling new scenes and
ranking potential errors), per the workflow of §3:

.. code-block:: python

    fixy = Fixy(features=default_features())
    fixy.fit(historical_scenes)                  # offline
    ranked = fixy.rank_tracks(new_scenes,        # online
                              track_filter=lambda t: not t.has_human)
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.aof import AOF
from repro.core.compile import CompiledScene, compile_scene
from repro.core.features import Feature
from repro.core.learning import FeatureDistributionLearner, LearnedModel
from repro.core.model import Observation, ObservationBundle, Scene, Track
from repro.core.scoring import ScoredItem, Scorer

__all__ = ["Fixy"]


class Fixy:
    """Learned observation assertions over perception scenes.

    Args:
        features: The feature set (see :mod:`repro.core.library`).
        aofs: Optional per-feature application objective functions,
            keyed by feature name.
        learn_sources: Observation sources treated as the organizational
            resource to learn from (default: human labels).
        min_samples: Minimum per-class sample count when fitting
            class-conditional distributions.
    """

    def __init__(
        self,
        features: list[Feature],
        aofs: Mapping[str, AOF] | None = None,
        learn_sources: tuple[str, ...] = ("human",),
        min_samples: int = 8,
    ):
        if not features:
            raise ValueError("Fixy needs at least one feature")
        names = [f.name for f in features]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate feature names: {sorted(names)}")
        self.features = list(features)
        self.aofs = dict(aofs or {})
        self._learner = FeatureDistributionLearner(
            self.features, sources=learn_sources, min_samples=min_samples
        )
        self.learned: LearnedModel | None = None

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def fit(self, scenes: list[Scene]) -> "Fixy":
        """Learn feature distributions from historical labeled scenes."""
        if not scenes:
            raise ValueError("fit requires at least one historical scene")
        self.learned = self._learner.fit(scenes)
        return self

    @property
    def is_fitted(self) -> bool:
        return self.learned is not None

    def _require_fitted(self) -> None:
        needs_learning = any(f.learnable for f in self.features)
        if needs_learning and not self.is_fitted:
            raise RuntimeError(
                "Fixy has learnable features but fit() has not been called"
            )

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------
    def compile(self, scene: Scene) -> CompiledScene:
        """Compile one scene into its factor graph."""
        self._require_fitted()
        return compile_scene(
            scene, self.features, learned=self.learned, aofs=self.aofs
        )

    def scorer(self, scene: Scene) -> Scorer:
        return Scorer(self.compile(scene))

    def rank_tracks(
        self,
        scenes: Scene | list[Scene],
        track_filter: Callable[[Track], bool] | None = None,
        top_k: int | None = None,
    ) -> list[ScoredItem]:
        """Rank tracks across one or more scenes, best score first."""
        ranked: list[ScoredItem] = []
        for scene in _as_list(scenes):
            ranked.extend(self.scorer(scene).rank_tracks(track_filter))
        ranked.sort(key=lambda s: s.score, reverse=True)
        return ranked[:top_k] if top_k is not None else ranked

    def rank_bundles(
        self,
        scenes: Scene | list[Scene],
        bundle_filter: Callable[[ObservationBundle, Track], bool] | None = None,
        top_k: int | None = None,
    ) -> list[ScoredItem]:
        """Rank bundles across one or more scenes, best score first."""
        ranked: list[ScoredItem] = []
        for scene in _as_list(scenes):
            ranked.extend(self.scorer(scene).rank_bundles(bundle_filter))
        ranked.sort(key=lambda s: s.score, reverse=True)
        return ranked[:top_k] if top_k is not None else ranked

    def rank_observations(
        self,
        scenes: Scene | list[Scene],
        obs_filter: Callable[[Observation], bool] | None = None,
        top_k: int | None = None,
    ) -> list[ScoredItem]:
        """Rank individual observations, best score first."""
        ranked: list[ScoredItem] = []
        for scene in _as_list(scenes):
            ranked.extend(self.scorer(scene).rank_observations(obs_filter))
        ranked.sort(key=lambda s: s.score, reverse=True)
        return ranked[:top_k] if top_k is not None else ranked


def _as_list(scenes: Scene | list[Scene]) -> list[Scene]:
    if isinstance(scenes, Scene):
        return [scenes]
    return list(scenes)
