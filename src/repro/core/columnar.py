"""Columnar scene representation: extract features once, evaluate in bulk.

The scalar compile path (:func:`repro.core.compile.compile_scene` with
``vectorized=False``) evaluates every (feature, item) pair with one
``likelihood()`` call — for a KDE-backed feature that is one full pass
over the training sample *per item*, plus Python call overhead per item.
At the paper's target scale ("millions of users", 100+ tracks per scene)
those per-item costs dominate end-to-end latency.

This module is the columnar middle layer that removes them:

- :class:`ObservationTable` — one pass over the scene flattens every
  observation into parallel NumPy arrays (centers, dimensions, yaw,
  frame, source/class codes) plus bundle / transition / track index
  ranges. Rows are track-major, bundle-major, in-bundle order, so every
  bundle, transition, and track covers a *contiguous* row range.
- :class:`FeatureColumn` — all items of one feature across the scene as
  parallel arrays: feature values, validity, conditioning groups, member
  observation row ranges, and the per-track coordinates that name the
  resulting factors.
- :class:`FeatureMatrix` — one column per feature. Features that
  implement :meth:`~repro.core.features.Feature.columnar_values`
  (``supports_columnar = True``) are extracted with pure array math over
  the table; any other feature falls back to a per-item
  :meth:`~repro.core.features.Feature.evaluate_batch` loop with
  identical semantics.

Compilation then scores each column with a handful of batched
``log_pdf`` calls (one per learned (feature, group) pair — see
:meth:`repro.core.learning.LearnedModel.likelihood_batch`) instead of
O(items × features) scalar density evaluations, and scoring reads
factor potentials straight out of these arrays without materializing
factor-graph node objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import Feature, FeatureContext
from repro.core.model import Observation, ObservationBundle, Scene, Track

__all__ = [
    "ObservationTable",
    "FeatureColumn",
    "FeatureMatrix",
    "SplicedTable",
    "SplicedMatrix",
]


def concat_arrays(parts: list[np.ndarray], dtype) -> np.ndarray:
    """``np.concatenate`` tolerating an empty part list (shared by the
    columnar compile and the splice paths)."""
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate(parts).astype(dtype, copy=False)


class ObservationTable:
    """Flat, array-backed view of one scene's observations.

    Row order is track-major: observations appear in
    ``scene.tracks`` order, within a track in bundle (frame) order, and
    within a bundle in insertion order — exactly the traversal order of
    the scalar compile path. Consequently every bundle, transition
    (adjacent bundle pair), and track corresponds to a contiguous row
    range, which is what lets factor membership be stored as
    ``(start, stop)`` pairs instead of edge lists.
    """

    def __init__(self, scene: Scene):
        self.scene = scene
        observations: list[Observation] = []
        bundles: list[ObservationBundle] = []
        self.tracks: list[Track] = list(scene.tracks)

        bundle_start: list[int] = []
        bundle_stop: list[int] = []
        bundle_frame: list[int] = []
        track_obs_slices: list[tuple[int, int]] = []
        track_bundle_slices: list[tuple[int, int]] = []

        for track in self.tracks:
            t_obs_start = len(observations)
            t_bundle_start = len(bundles)
            for bundle in track.bundles:
                bundle_start.append(len(observations))
                observations.extend(bundle.observations)
                bundle_stop.append(len(observations))
                bundle_frame.append(bundle.frame)
                bundles.append(bundle)
            track_obs_slices.append((t_obs_start, len(observations)))
            track_bundle_slices.append((t_bundle_start, len(bundles)))

        self.observations = observations
        self.bundles = bundles
        self.row_of: dict[str, int] = {
            obs.obs_id: row for row, obs in enumerate(observations)
        }
        if len(self.row_of) != len(observations):
            seen: set[str] = set()
            for obs in observations:
                if obs.obs_id in seen:
                    # Same rejection (and message) the eager graph build
                    # produced via FactorGraph.add_variable.
                    raise ValueError(f"variable {obs.obs_id!r} already exists")
                seen.add(obs.obs_id)
        self.track_obs_slices = track_obs_slices
        self.track_bundle_slices = track_bundle_slices

        n = len(observations)
        self.frame = np.fromiter((o.frame for o in observations), int, n)
        self.x = np.fromiter((o.box.x for o in observations), float, n)
        self.y = np.fromiter((o.box.y for o in observations), float, n)
        self.z = np.fromiter((o.box.z for o in observations), float, n)
        self.length = np.fromiter((o.box.length for o in observations), float, n)
        self.width = np.fromiter((o.box.width for o in observations), float, n)
        self.height = np.fromiter((o.box.height for o in observations), float, n)
        self.yaw = np.fromiter((o.box.yaw for o in observations), float, n)
        self.is_model = np.fromiter((o.is_model for o in observations), bool, n)
        self.is_human = np.fromiter((o.is_human for o in observations), bool, n)
        self.confidence = np.fromiter(
            (math.nan if o.confidence is None else o.confidence
             for o in observations),
            float,
            n,
        )
        self.obs_class: list[str] = [o.object_class for o in observations]
        classes = sorted(set(self.obs_class))
        class_code = {c: i for i, c in enumerate(classes)}
        self.class_codes = np.fromiter(
            (class_code[c] for c in self.obs_class), int, n
        )

        self.bundle_start = np.asarray(bundle_start, dtype=int)
        self.bundle_stop = np.asarray(bundle_stop, dtype=int)
        self.bundle_frame = np.asarray(bundle_frame, dtype=int)
        self.bundle_rep = self._representative_rows()

        # Transitions: adjacent bundle pairs within each track.
        before: list[int] = []
        track_trans_slices: list[tuple[int, int]] = []
        for b_start, b_stop in track_bundle_slices:
            t_start = len(before)
            before.extend(range(b_start, b_stop - 1))
            track_trans_slices.append((t_start, len(before)))
        self.trans_before = np.asarray(before, dtype=int)
        self.trans_after = self.trans_before + 1
        self.track_trans_slices = track_trans_slices

        self._transitions: list[tuple] | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def concat(scene: Scene, tables: list["ObservationTable"]) -> "ObservationTable":
        """Splice per-track tables into one scene-wide table.

        ``tables`` must cover ``scene.tracks`` in order (in practice one
        single-track table per track — the delta-recompilation substrate:
        only changed tracks are re-extracted, the rest are spliced back
        by pure array concatenation). All index arrays are shifted by the
        obvious row/bundle/transition offsets; no observation is
        re-inspected.
        """
        merged = ObservationTable.__new__(ObservationTable)
        merged.scene = scene
        merged.tracks = [t for tab in tables for t in tab.tracks]
        if [t.track_id for t in merged.tracks] != [t.track_id for t in scene.tracks]:
            raise ValueError(
                "tables do not cover scene.tracks in order: "
                f"{[t.track_id for t in merged.tracks]} != "
                f"{[t.track_id for t in scene.tracks]}"
            )
        merged.observations = [o for tab in tables for o in tab.observations]
        merged.bundles = [b for tab in tables for b in tab.bundles]

        row_of: dict[str, int] = {}
        track_obs_slices: list[tuple[int, int]] = []
        track_bundle_slices: list[tuple[int, int]] = []
        track_trans_slices: list[tuple[int, int]] = []
        r = b = t = 0  # observation / bundle / transition offsets
        for tab in tables:
            for obs_id, row in tab.row_of.items():
                row_of[obs_id] = row + r
            track_obs_slices.extend((s + r, e + r) for s, e in tab.track_obs_slices)
            track_bundle_slices.extend(
                (s + b, e + b) for s, e in tab.track_bundle_slices
            )
            track_trans_slices.extend(
                (s + t, e + t) for s, e in tab.track_trans_slices
            )
            r += tab.n_obs
            b += tab.n_bundles
            t += tab.n_transitions
        if len(row_of) != len(merged.observations):
            seen: set[str] = set()
            for obs in merged.observations:
                if obs.obs_id in seen:
                    raise ValueError(f"variable {obs.obs_id!r} already exists")
                seen.add(obs.obs_id)
        merged.row_of = row_of
        merged.track_obs_slices = track_obs_slices
        merged.track_bundle_slices = track_bundle_slices
        merged.track_trans_slices = track_trans_slices

        cat = concat_arrays
        for field_name, dtype in (
            ("frame", int), ("x", float), ("y", float), ("z", float),
            ("length", float), ("width", float), ("height", float),
            ("yaw", float), ("is_model", bool), ("is_human", bool),
            ("confidence", float), ("bundle_frame", int),
        ):
            setattr(
                merged, field_name,
                cat([getattr(tab, field_name) for tab in tables], dtype),
            )
        merged.obs_class = [c for tab in tables for c in tab.obs_class]
        classes = sorted(set(merged.obs_class))
        class_code = {c: i for i, c in enumerate(classes)}
        merged.class_codes = np.fromiter(
            (class_code[c] for c in merged.obs_class), int, len(merged.obs_class)
        )

        obs_offsets = np.cumsum([0] + [tab.n_obs for tab in tables])
        bundle_offsets = np.cumsum([0] + [tab.n_bundles for tab in tables])
        merged.bundle_start = cat(
            [tab.bundle_start + off for tab, off in zip(tables, obs_offsets)], int
        )
        merged.bundle_stop = cat(
            [tab.bundle_stop + off for tab, off in zip(tables, obs_offsets)], int
        )
        merged.bundle_rep = cat(
            [tab.bundle_rep + off for tab, off in zip(tables, obs_offsets)], int
        )
        merged.trans_before = cat(
            [tab.trans_before + off for tab, off in zip(tables, bundle_offsets)], int
        )
        merged.trans_after = merged.trans_before + 1
        merged._transitions = None
        return merged

    # ------------------------------------------------------------------
    @property
    def n_obs(self) -> int:
        return len(self.observations)

    @property
    def n_bundles(self) -> int:
        return len(self.bundles)

    @property
    def n_transitions(self) -> int:
        return int(self.trans_before.size)

    @property
    def transitions(self) -> list[tuple[ObservationBundle, ObservationBundle]]:
        """All (β_i, β_{i+1}) item tuples, built once on first use."""
        if self._transitions is None:
            self._transitions = [
                (self.bundles[b], self.bundles[b + 1]) for b in self.trans_before
            ]
        return self._transitions

    def _representative_rows(self) -> np.ndarray:
        """Row of each bundle's representative observation.

        Mirrors :meth:`repro.core.model.ObservationBundle.representative`:
        the highest-confidence model observation (first wins ties), else
        the bundle's first observation.
        """
        reps = np.array(self.bundle_start, dtype=int, copy=True)
        is_model, conf = self.is_model, self.confidence
        for b, (start, stop) in enumerate(zip(self.bundle_start, self.bundle_stop)):
            best_row, best_conf = -1, -math.inf
            for row in range(start, stop):
                if is_model[row] and not math.isnan(conf[row]) and conf[row] > best_conf:
                    best_row, best_conf = row, conf[row]
            if best_row >= 0:
                reps[b] = best_row
        return reps

    # ------------------------------------------------------------------
    # Per-kind geometry: item counts, member ranges, track slices.
    # ------------------------------------------------------------------
    def kind_count(self, kind: str) -> int:
        return self.kind_counts()[kind]

    def kind_counts(self) -> dict[str, int]:
        """All per-kind item counts, memoized (tables are immutable —
        splicing reads these once per segment per delta recompile)."""
        counts = self.__dict__.get("_kind_counts")
        if counts is None:
            counts = {
                "observation": self.n_obs,
                "bundle": self.n_bundles,
                "transition": self.n_transitions,
                "track": len(self.tracks),
            }
            self._kind_counts = counts
        return counts

    def kind_items(self, kind: str) -> list:
        """Item objects of a kind, in global (track-major) order."""
        if kind == "observation":
            return self.observations
        if kind == "bundle":
            return self.bundles
        if kind == "transition":
            return self.transitions
        if kind == "track":
            return self.tracks
        raise ValueError(f"unknown feature kind {kind!r}")

    def kind_member_ranges(self, kind: str) -> tuple[np.ndarray, np.ndarray]:
        """``(start, stop)`` observation-row ranges per item of a kind."""
        if kind == "observation":
            rows = np.arange(self.n_obs, dtype=int)
            return rows, rows + 1
        if kind == "bundle":
            return self.bundle_start, self.bundle_stop
        if kind == "transition":
            return (
                self.bundle_start[self.trans_before],
                self.bundle_stop[self.trans_after],
            )
        if kind == "track":
            starts = np.asarray([s for s, _ in self.track_obs_slices], dtype=int)
            stops = np.asarray([e for _, e in self.track_obs_slices], dtype=int)
            return starts, stops
        raise ValueError(f"unknown feature kind {kind!r}")

    def kind_track_slices(self, kind: str) -> list[tuple[int, int]]:
        """Per-track ``[start, stop)`` item ranges for a kind."""
        if kind == "observation":
            return self.track_obs_slices
        if kind == "bundle":
            return self.track_bundle_slices
        if kind == "transition":
            return self.track_trans_slices
        if kind == "track":
            return [(i, i + 1) for i in range(len(self.tracks))]
        raise ValueError(f"unknown feature kind {kind!r}")

    def item_classes(self, kind: str) -> list[str]:
        """The default conditioning class per item of a kind.

        Matches ``Feature._item_class``: an observation's own class, a
        bundle's representative class, a transition's before-bundle
        representative class, a track's majority class.
        """
        if kind == "observation":
            return self.obs_class
        if kind == "bundle":
            return [self.obs_class[r] for r in self.bundle_rep]
        if kind == "transition":
            return [self.obs_class[self.bundle_rep[b]] for b in self.trans_before]
        if kind == "track":
            return [t.majority_class() for t in self.tracks]
        raise ValueError(f"unknown feature kind {kind!r}")


@dataclass
class FeatureColumn:
    """All items of one feature over one scene, as parallel arrays.

    Arrays are full-length (one row per item, valid or not); ``valid``
    marks the rows whose feature value applies. Invalid rows still
    occupy their position so per-track item indices — and hence factor
    names (``feature@track#index``) — match the scalar compile path
    exactly. Columnar-extracted columns leave ``items`` as ``None`` and
    resolve item objects lazily through the table; fallback columns
    (custom ``items_of``) record their own item list and per-track row
    slices.
    """

    feature: Feature
    kind: str
    table: ObservationTable
    #: feature value per item; NaN rows are inapplicable. ``None`` when
    #: the fallback path kept raw (possibly non-numeric) values instead.
    values: np.ndarray | None
    #: raw per-item values (fallback path only; ``None`` marks inapplicable)
    values_list: list | None
    #: whether each row's feature value applies
    valid: np.ndarray
    #: conditioning key per row (learnable features only, else ``None``)
    groups: list | None
    #: member observation row range per item
    member_start: np.ndarray
    member_stop: np.ndarray
    #: ``[start, stop)`` row range per track (scene track order)
    track_slices: list[tuple[int, int]]
    #: item objects per row (fallback path; ``None`` = use the table's
    #: per-kind items)
    items: list | None = None
    #: rare non-contiguous member rows (custom ``observations_of``),
    #: keyed by row index
    member_overrides: dict[int, np.ndarray] = field(default_factory=dict)
    #: AOF-transformed potentials per row (filled in by compilation;
    #: NaN rows produce no factor)
    potentials: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.valid.size)

    def item_at(self, row: int):
        """The item object at a row (lazy through the table if columnar)."""
        if self.items is not None:
            return self.items[row]
        return self.table.kind_items(self.kind)[row]


@dataclass
class FeatureMatrix:
    """Per-feature columnar extraction of one scene."""

    scene: Scene
    context: FeatureContext
    table: ObservationTable
    columns: dict[str, FeatureColumn] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return sum(len(c) for c in self.columns.values())

    @staticmethod
    def build(
        scene: Scene,
        features: list[Feature],
        context: FeatureContext | None = None,
        table: ObservationTable | None = None,
    ) -> "FeatureMatrix":
        """Extract every feature once over ``scene``.

        Features with ``supports_columnar`` run as array math over the
        shared :class:`ObservationTable`; the rest go through a per-item
        :meth:`Feature.evaluate_batch` loop. Either way each feature is
        computed exactly once per scene.
        """
        ctx = context or FeatureContext.from_scene(scene)
        tbl = table or ObservationTable(scene)
        matrix = FeatureMatrix(scene=scene, context=ctx, table=tbl)
        for feature in features:
            if feature.supports_columnar:
                column = _columnar_column(feature, tbl, ctx)
            else:
                column = _fallback_column(feature, tbl, ctx)
            matrix.columns[feature.name] = column
        return matrix

    @staticmethod
    def concat(
        scene: Scene,
        context: FeatureContext,
        table: ObservationTable,
        matrices: list["FeatureMatrix"],
    ) -> "FeatureMatrix":
        """Splice per-track matrices (aligned with ``table``) into one.

        The counterpart of :meth:`ObservationTable.concat` for the
        per-feature columns: values/validity/potentials concatenate,
        member ranges shift by observation-row offsets, per-track item
        slices shift by per-kind item offsets. No feature is
        re-evaluated.
        """
        merged = FeatureMatrix(scene=scene, context=context, table=table)
        if not matrices:
            return merged
        names = list(matrices[0].columns)
        for m in matrices[1:]:
            if list(m.columns) != names:
                raise ValueError(
                    "matrices disagree on feature columns: "
                    f"{list(m.columns)} != {names}"
                )
        obs_offsets = np.cumsum([0] + [m.table.n_obs for m in matrices])
        for name in names:
            parts = [m.columns[name] for m in matrices]
            kind = parts[0].kind
            feature = parts[0].feature
            # Offsets come from actual column lengths, not table kind
            # counts: a fallback column with a custom ``items_of`` may
            # carry fewer rows than the table has items of its kind.
            item_offsets = np.cumsum([0] + [len(c) for c in parts])
            values = _concat_values([c.values for c in parts])
            values_list = None
            if parts[0].values_list is not None:
                values_list = [v for c in parts for v in c.values_list]
            valid = (
                np.concatenate([c.valid for c in parts])
                if parts else np.empty(0, dtype=bool)
            )
            groups = None
            if parts[0].groups is not None:
                groups = [g for c in parts for g in c.groups]
            member_start = np.concatenate(
                [c.member_start + off for c, off in zip(parts, obs_offsets)]
            ).astype(int, copy=False)
            member_stop = np.concatenate(
                [c.member_stop + off for c, off in zip(parts, obs_offsets)]
            ).astype(int, copy=False)
            track_slices = [
                (s + off, e + off)
                for c, off in zip(parts, item_offsets)
                for s, e in c.track_slices
            ]
            items = None
            if parts[0].items is not None:
                items = [item for c in parts for item in c.items]
            overrides: dict[int, np.ndarray] = {}
            for c, item_off, obs_off in zip(parts, item_offsets, obs_offsets):
                for row, rows in c.member_overrides.items():
                    overrides[row + int(item_off)] = rows + int(obs_off)
            potentials = None
            if parts[0].potentials is not None:
                potentials = np.concatenate([c.potentials for c in parts])
            merged.columns[name] = FeatureColumn(
                feature=feature,
                kind=kind,
                table=table,
                values=values,
                values_list=values_list,
                valid=valid,
                groups=groups,
                member_start=member_start,
                member_stop=member_stop,
                track_slices=track_slices,
                items=items,
                member_overrides=overrides,
                potentials=potentials,
            )
        return merged


def _columnar_column(
    feature: Feature, table: ObservationTable, ctx: FeatureContext
) -> FeatureColumn:
    """Build a column with pure array extraction (``columnar_values``)."""
    kind = feature.kind
    n = table.kind_count(kind)
    values = np.asarray(feature.columnar_values(table, ctx), dtype=float)
    if values.shape[:1] != (n,):
        raise ValueError(
            f"feature {feature.name!r} columnar_values returned shape "
            f"{values.shape}, expected ({n}, ...)"
        )
    valid = ~np.isnan(values) if values.ndim == 1 else ~np.isnan(values).any(axis=1)
    groups = None
    if feature.learnable:
        groups = feature.columnar_group_keys(table, ctx)
    member_start, member_stop = table.kind_member_ranges(kind)
    return FeatureColumn(
        feature=feature,
        kind=kind,
        table=table,
        values=values,
        values_list=None,
        valid=valid,
        groups=groups,
        member_start=member_start,
        member_stop=member_stop,
        track_slices=table.kind_track_slices(kind),
    )


def _fallback_column(
    feature: Feature, table: ObservationTable, ctx: FeatureContext
) -> FeatureColumn:
    """Build a column by looping ``evaluate_batch`` per track.

    Semantically identical to the scalar compile path (same ``compute``,
    ``group_key``, and ``observations_of`` calls, in the same order);
    only the density evaluation downstream is batched.
    """
    kind = feature.kind
    values_list: list = []
    all_items: list = []
    groups: list | None = [] if feature.learnable else None
    member_start: list[int] = []
    member_stop: list[int] = []
    track_slices: list[tuple[int, int]] = []
    overrides: dict[int, np.ndarray] = {}
    row_of = table.row_of

    for track in table.tracks:
        track_row_start = len(values_list)
        items = list(feature.items_of(track))
        all_items.extend(items)
        track_values = feature.evaluate_batch(items, ctx)
        for item, value in zip(items, track_values):
            row = len(values_list)
            values_list.append(value)
            if value is None:
                member_start.append(0)
                member_stop.append(0)
                if groups is not None:
                    groups.append(None)
                continue
            if groups is not None:
                groups.append(feature.group_key(item, ctx))
            rows = [row_of[o.obs_id] for o in feature.observations_of(item)]
            if not rows:
                member_start.append(0)
                member_stop.append(0)
                continue
            lo, hi = min(rows), max(rows) + 1
            if hi - lo == len(rows) and len(set(rows)) == len(rows):
                member_start.append(lo)
                member_stop.append(hi)
            else:
                member_start.append(0)
                member_stop.append(0)
                overrides[row] = np.asarray(sorted(set(rows)), dtype=int)
        track_slices.append((track_row_start, len(values_list)))

    valid = np.asarray(
        [v is not None for v in values_list], dtype=bool
    )
    # Rows with member ranges that came out empty (and no override) have
    # nothing to attach a factor to; treat them like the scalar path's
    # "no member observations" skip.
    starts = np.asarray(member_start, dtype=int)
    stops = np.asarray(member_stop, dtype=int)
    empty = (stops - starts == 0) & ~np.isin(
        np.arange(valid.size), list(overrides)
    )
    valid &= ~empty

    values = None
    if feature.learnable:
        # Learnable features must produce numeric values (they feed a
        # fitted density); lift them into a NaN-padded float array.
        values = _to_float_array(values_list, valid)
    return FeatureColumn(
        feature=feature,
        kind=kind,
        table=table,
        values=values,
        values_list=values_list,
        valid=valid,
        groups=groups,
        member_start=starts,
        member_stop=stops,
        track_slices=track_slices,
        items=all_items,
        member_overrides=overrides,
    )


class SplicedTable(ObservationTable):
    """A lazily merged view over per-track tables (delta recompilation).

    Scoring a spliced scene needs almost nothing from the merged table —
    only ``n_obs`` up front, and ``row_of`` for bundle/observation
    queries — while the full merge (observation lists, per-row arrays,
    class codes) is only consulted by the graph views and diagnostics.
    This subclass therefore materializes :meth:`ObservationTable.concat`
    on first touch of any merged attribute, keeping the edit → recompile
    path free of per-observation work for unchanged tracks.
    """

    def __init__(self, scene: Scene, tables: list[ObservationTable]):
        # Deliberately skips ObservationTable.__init__: merged state is
        # produced by concat() on demand.
        self.scene = scene
        self.tracks = [t for tab in tables for t in tab.tracks]
        if [t.track_id for t in self.tracks] != [
            t.track_id for t in scene.tracks
        ]:
            raise ValueError(
                "tables do not cover scene.tracks in order: "
                f"{[t.track_id for t in self.tracks]} != "
                f"{[t.track_id for t in scene.tracks]}"
            )
        self._parts = list(tables)
        self._n_obs = sum(tab.n_obs for tab in tables)
        self._materializing = False

    @property
    def n_obs(self) -> int:
        return self._n_obs

    @property
    def row_of(self) -> dict[str, int]:
        self._materialize()
        return self._row_of

    def _materialize(self) -> None:
        if "_row_of" in self.__dict__:
            return
        self._materializing = True
        try:
            merged = ObservationTable.concat(self.scene, self._parts)
        finally:
            self._materializing = False
        for key, value in merged.__dict__.items():
            if key in ("scene", "tracks", "row_of"):
                continue
            self.__dict__.setdefault(key, value)
        self._row_of = merged.row_of

    def __getattr__(self, name: str):
        # Only called for attributes not yet in __dict__ — i.e. merged
        # state that has not materialized.
        if name.startswith("_") or self.__dict__.get("_materializing"):
            raise AttributeError(name)
        self._materialize()
        return object.__getattribute__(self, name)


class SplicedMatrix(FeatureMatrix):
    """A lazily merged view over per-track matrices.

    The merged per-feature columns are only consulted by factor naming
    and graph materialization; ranking reads factor-level arrays from
    :class:`~repro.core.compile.CompiledColumns` directly. Deferring
    :meth:`FeatureMatrix.concat` keeps those costs off the delta
    recompilation path entirely.
    """

    def __init__(
        self,
        scene: Scene,
        context: FeatureContext,
        table: ObservationTable,
        matrices: list[FeatureMatrix],
    ):
        # Deliberately skips the dataclass __init__; `columns` becomes a
        # lazy property instead of a field.
        self.scene = scene
        self.context = context
        self.table = table
        self._matrices = list(matrices)
        self._columns: dict[str, FeatureColumn] | None = None

    @property
    def columns(self) -> dict[str, FeatureColumn]:
        if self._columns is None:
            self._columns = FeatureMatrix.concat(
                self.scene, self.context, self.table, self._matrices
            ).columns
        return self._columns


def _concat_values(parts: list[np.ndarray | None]) -> np.ndarray | None:
    """Concatenate per-segment value arrays, tolerating empty segments.

    Empty tracks can yield ``(0,)`` placeholders even for ``(n, d)``
    features (the fallback path cannot infer ``d`` from zero values), so
    zero-length parts adopt the shape of the non-empty ones.
    """
    if parts and parts[0] is None:
        return None
    nonempty = [p for p in parts if p is not None and p.shape[0]]
    if not nonempty:
        return parts[0] if parts else None
    trailing = nonempty[0].shape[1:]
    aligned = [
        p if p.shape[0] else np.empty((0,) + trailing, dtype=float)
        for p in parts
        if p is not None
    ]
    return np.concatenate(aligned)


def _to_float_array(values_list: list, valid: np.ndarray) -> np.ndarray:
    """NaN-padded float array from a list with ``None`` gaps."""
    dim = 1
    for value in values_list:
        if value is not None:
            dim = int(np.atleast_1d(np.asarray(value, dtype=float)).size)
            break
    if dim == 1:
        out = np.full(len(values_list), np.nan)
        for row, value in enumerate(values_list):
            if valid[row]:
                out[row] = float(np.atleast_1d(np.asarray(value, float))[0])
        return out
    out = np.full((len(values_list), dim), np.nan)
    for row, value in enumerate(values_list):
        if valid[row]:
            out[row] = np.asarray(value, dtype=float).reshape(dim)
    return out
