"""The LOA scene data model: observations, bundles, tracks, scenes (OBTs).

This module realizes Table 1 of the paper:

========  =====================
Element   Meaning
========  =====================
``s``     Scene — a set of tracks
``τ``     Track — an indexed sequence of observation bundles
``β``     Observation bundle — a set of observations at one time step
``ω``     Observation — one box from one source at one time step
``π``     Feature mapping (lives in :mod:`repro.core.features`)
========  =====================

Observations are deliberately source-agnostic: a human-proposed label, an
ML model prediction, and an auditor annotation are all the same type,
distinguished by :attr:`Observation.source`. This is what lets LOA treat
"finding missing human labels" and "finding model errors" as the same
scoring problem with different application objective functions.

The classes here know nothing about the world simulator; they are the
public API a user with a real dataset would populate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.geometry import Box3D

__all__ = [
    "SOURCE_HUMAN",
    "SOURCE_MODEL",
    "SOURCE_AUDITOR",
    "Observation",
    "ObservationBundle",
    "Track",
    "Scene",
]

SOURCE_HUMAN = "human"
SOURCE_MODEL = "model"
SOURCE_AUDITOR = "auditor"

_obs_counter = itertools.count()


def _next_obs_id() -> str:
    return f"obs-{next(_obs_counter):08d}"


@dataclass(frozen=True)
class Observation:
    """One observation ω: a 3D box proposed by one source at one frame.

    Attributes:
        frame: Frame index within the scene.
        box: The proposed 3D bounding box (world coordinates).
        object_class: Semantic class string (e.g. ``"car"``).
        source: Where the box came from — ``"human"``, ``"model"``, ….
        confidence: Model confidence in ``[0, 1]``; ``None`` for sources
            that do not produce scores (human labels).
        obs_id: Unique identifier (auto-assigned when omitted).
        metadata: Free-form side channel (the simulators stash the
            ground-truth object id here; LOA itself never reads it).
    """

    frame: int
    box: Box3D
    object_class: str
    source: str
    confidence: float | None = None
    obs_id: str = field(default_factory=_next_obs_id)
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.frame < 0:
            raise ValueError(f"frame must be non-negative, got {self.frame}")
        if self.confidence is not None and not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")

    @property
    def is_human(self) -> bool:
        return self.source == SOURCE_HUMAN

    @property
    def is_model(self) -> bool:
        return self.source == SOURCE_MODEL

    def to_dict(self) -> dict:
        return {
            "obs_id": self.obs_id,
            "frame": self.frame,
            "box": self.box.to_dict(),
            "object_class": self.object_class,
            "source": self.source,
            "confidence": self.confidence,
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_dict(data: dict) -> "Observation":
        return Observation(
            obs_id=data["obs_id"],
            frame=int(data["frame"]),
            box=Box3D.from_dict(data["box"]),
            object_class=data["object_class"],
            source=data["source"],
            confidence=data.get("confidence"),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class ObservationBundle:
    """A bundle β: observations of (putatively) one object at one frame.

    Bundles are produced by the association layer — e.g. a human label and
    an overlapping model prediction at the same frame form a two-element
    bundle. A bundle always has at least one observation and all members
    share the same frame.
    """

    frame: int
    observations: list[Observation] = field(default_factory=list)

    def __post_init__(self) -> None:
        for obs in self.observations:
            if obs.frame != self.frame:
                raise ValueError(
                    f"observation {obs.obs_id} at frame {obs.frame} cannot "
                    f"join a bundle at frame {self.frame}"
                )

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def add(self, obs: Observation) -> None:
        if obs.frame != self.frame:
            raise ValueError(
                f"observation frame {obs.frame} != bundle frame {self.frame}"
            )
        self.observations.append(obs)

    @property
    def sources(self) -> set[str]:
        return {o.source for o in self.observations}

    @property
    def has_human(self) -> bool:
        return SOURCE_HUMAN in self.sources

    @property
    def has_model(self) -> bool:
        return SOURCE_MODEL in self.sources

    def by_source(self, source: str) -> list[Observation]:
        return [o for o in self.observations if o.source == source]

    def classes_agree(self) -> bool:
        """Whether all member observations propose the same class."""
        classes = {o.object_class for o in self.observations}
        return len(classes) <= 1

    def to_dict(self) -> dict:
        return {
            "frame": self.frame,
            "observations": [o.to_dict() for o in self.observations],
        }

    @staticmethod
    def from_dict(data: dict) -> "ObservationBundle":
        return ObservationBundle(
            frame=int(data["frame"]),
            observations=[Observation.from_dict(o) for o in data["observations"]],
        )

    def representative(self) -> Observation:
        """A canonical member: the highest-confidence model observation,
        else the first observation."""
        models = [o for o in self.observations if o.is_model and o.confidence is not None]
        if models:
            return max(models, key=lambda o: o.confidence)
        return self.observations[0]


@dataclass
class Track:
    """A track τ: an indexed sequence of bundles for one (putative) object.

    Bundles are kept sorted by frame; at most one bundle per frame.
    """

    track_id: str
    bundles: list[ObservationBundle] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.bundles.sort(key=lambda b: b.frame)
        frames = [b.frame for b in self.bundles]
        if len(frames) != len(set(frames)):
            raise ValueError(f"track {self.track_id} has duplicate frames")

    def __len__(self) -> int:
        return len(self.bundles)

    def __iter__(self) -> Iterator[ObservationBundle]:
        return iter(self.bundles)

    def add(self, bundle: ObservationBundle) -> None:
        if any(b.frame == bundle.frame for b in self.bundles):
            raise ValueError(
                f"track {self.track_id} already has a bundle at frame {bundle.frame}"
            )
        self.bundles.append(bundle)
        self.bundles.sort(key=lambda b: b.frame)

    @property
    def frames(self) -> list[int]:
        return [b.frame for b in self.bundles]

    @property
    def observations(self) -> list[Observation]:
        return [o for b in self.bundles for o in b.observations]

    @property
    def n_observations(self) -> int:
        return sum(len(b) for b in self.bundles)

    @property
    def sources(self) -> set[str]:
        out: set[str] = set()
        for b in self.bundles:
            out |= b.sources
        return out

    @property
    def has_human(self) -> bool:
        return SOURCE_HUMAN in self.sources

    @property
    def has_model(self) -> bool:
        return SOURCE_MODEL in self.sources

    def bundle_at(self, frame: int) -> ObservationBundle | None:
        for b in self.bundles:
            if b.frame == frame:
                return b
        return None

    def transitions(self) -> list[tuple[ObservationBundle, ObservationBundle]]:
        """Adjacent bundle pairs (β_i, β_{i+1}) for transition features."""
        return list(zip(self.bundles, self.bundles[1:]))

    def majority_class(self) -> str:
        """Most frequent class among member observations (ties: first seen)."""
        counts: dict[str, int] = {}
        for obs in self.observations:
            counts[obs.object_class] = counts.get(obs.object_class, 0) + 1
        if not counts:
            raise ValueError(f"track {self.track_id} has no observations")
        return max(counts, key=counts.get)

    def to_dict(self) -> dict:
        return {
            "track_id": self.track_id,
            "bundles": [b.to_dict() for b in self.bundles],
        }

    @staticmethod
    def from_dict(data: dict) -> "Track":
        return Track(
            track_id=data["track_id"],
            bundles=[ObservationBundle.from_dict(b) for b in data["bundles"]],
        )


@dataclass
class Scene:
    """A scene s: a set of tracks plus frame timing metadata.

    ``dt`` (seconds per frame) is carried so transition features can
    convert per-frame displacements into physical velocities.
    """

    scene_id: str
    dt: float
    tracks: list[Track] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    def __len__(self) -> int:
        return len(self.tracks)

    def __iter__(self) -> Iterator[Track]:
        return iter(self.tracks)

    def track_by_id(self, track_id: str) -> Track:
        for track in self.tracks:
            if track.track_id == track_id:
                return track
        raise KeyError(f"no track {track_id!r} in scene {self.scene_id!r}")

    @property
    def observations(self) -> list[Observation]:
        return [o for t in self.tracks for o in t.observations]

    @property
    def bundles(self) -> list[ObservationBundle]:
        return [b for t in self.tracks for b in t.bundles]

    def filter_tracks(self, predicate: Callable[[Track], bool]) -> "Scene":
        """A shallow-copied scene keeping only tracks matching ``predicate``."""
        return Scene(
            scene_id=self.scene_id,
            dt=self.dt,
            tracks=[t for t in self.tracks if predicate(t)],
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # Serialization. ``metadata["ego_poses"]`` holds Pose2D objects in
    # memory; it is converted to/from plain dicts on the way through.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        metadata = dict(self.metadata)
        ego = metadata.pop("ego_poses", None)
        payload = {
            "scene_id": self.scene_id,
            "dt": self.dt,
            "tracks": [t.to_dict() for t in self.tracks],
            "metadata": metadata,
        }
        if ego is not None:
            poses = ego.values() if isinstance(ego, dict) else ego
            payload["ego_poses"] = [p.to_dict() for p in poses]
        return payload

    @staticmethod
    def from_dict(data: dict) -> "Scene":
        from repro.geometry import Pose2D

        metadata = dict(data.get("metadata", {}))
        if "ego_poses" in data:
            metadata["ego_poses"] = [
                Pose2D.from_dict(p) for p in data["ego_poses"]
            ]
        return Scene(
            scene_id=data["scene_id"],
            dt=float(data["dt"]),
            tracks=[Track.from_dict(t) for t in data["tracks"]],
            metadata=metadata,
        )

    def save(self, path) -> None:
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @staticmethod
    def load(path) -> "Scene":
        import json
        from pathlib import Path

        return Scene.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
