"""Assignment algorithms for observation association.

Association reduces to bipartite matching on an affinity matrix (IoU or a
distance-derived score). Two matchers are provided:

- :func:`greedy_match` — repeatedly takes the highest-affinity pair; the
  standard fast heuristic in detection/tracking pipelines.
- :func:`hungarian_match` — optimal assignment via
  ``scipy.optimize.linear_sum_assignment``.

Both return only pairs whose affinity clears a threshold, so the matrices
may be rectangular and sparse in practice. A small union-find is included
for merging pairwise associations into groups (bundles).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = ["greedy_match", "hungarian_match", "UnionFind"]


def _validate(affinity: np.ndarray) -> np.ndarray:
    mat = np.asarray(affinity, dtype=float)
    if mat.ndim != 2:
        raise ValueError(f"affinity must be 2-D, got shape {mat.shape}")
    if np.isnan(mat).any():
        raise ValueError("affinity matrix contains NaN")
    return mat


def greedy_match(
    affinity: np.ndarray, threshold: float = 0.0
) -> list[tuple[int, int]]:
    """Greedy maximum-affinity matching.

    Repeatedly selects the largest remaining entry above ``threshold`` and
    removes its row and column. O(n*m*min(n,m)) worst case, which is fine
    for per-frame box counts.

    Returns:
        Pairs ``(row, col)`` sorted by row index.
    """
    mat = _validate(affinity).copy()
    if mat.size == 0:
        return []
    pairs: list[tuple[int, int]] = []
    while True:
        idx = int(np.argmax(mat))
        i, j = divmod(idx, mat.shape[1])
        if mat[i, j] <= threshold:
            break
        pairs.append((i, j))
        mat[i, :] = -np.inf
        mat[:, j] = -np.inf
    return sorted(pairs)


def hungarian_match(
    affinity: np.ndarray, threshold: float = 0.0
) -> list[tuple[int, int]]:
    """Optimal bipartite matching maximizing total affinity.

    Pairs with affinity at or below ``threshold`` are dropped after the
    assignment, so the result may leave rows/columns unmatched.
    """
    mat = _validate(affinity)
    if mat.size == 0:
        return []
    rows, cols = linear_sum_assignment(-mat)
    return sorted(
        (int(i), int(j)) for i, j in zip(rows, cols) if mat[i, j] > threshold
    )


class UnionFind:
    """Disjoint-set forest over ``n`` integer elements (path compression +
    union by size)."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns False if already one."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def groups(self) -> list[list[int]]:
        """All disjoint sets, each sorted, ordered by smallest member."""
        by_root: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            by_root.setdefault(self.find(x), []).append(x)
        return sorted(by_root.values(), key=lambda g: g[0])
