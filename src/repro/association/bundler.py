"""Bundlers: grouping same-frame observations from different sources.

This realizes the paper's worked example (§3):

.. code-block:: python

    class TrackBundler(Bundler):
        def is_associated(self, box1, box2):
            return compute_iou(box1, box2) > 0.5

A bundler decides whether two observations *in the same frame* describe
the same physical object. :meth:`Bundler.bundle_frame` then merges the
pairwise decisions into :class:`~repro.core.model.ObservationBundle`
groups, matching one-to-one between each pair of sources (a human label
should absorb at most one model box and vice versa).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations

import numpy as np

from repro.association.matching import UnionFind, greedy_match, hungarian_match
from repro.core.model import Observation, ObservationBundle
from repro.geometry import Box3D, compute_iou

__all__ = ["Bundler", "IoUBundler", "TrackBundler", "CenterDistanceBundler"]


class Bundler(ABC):
    """Decides whether two same-frame boxes describe the same object.

    Subclasses override :meth:`is_associated` (boolean decision) and may
    override :meth:`affinity` (used to break ties when several candidates
    associate). The default affinity is BEV IoU.
    """

    matcher: str = "greedy"

    @abstractmethod
    def is_associated(self, box1: Box3D, box2: Box3D) -> bool:
        """Whether the two boxes belong to the same object."""

    def affinity(self, box1: Box3D, box2: Box3D) -> float:
        """Tie-breaking score; higher = more likely the same object."""
        return compute_iou(box1, box2)

    # ------------------------------------------------------------------
    def bundle_frame(self, observations: list[Observation]) -> list[ObservationBundle]:
        """Group one frame's observations into bundles.

        Observations from the *same* source never share a bundle directly
        (a source proposes each object once); between each pair of
        sources, members are matched one-to-one by affinity among
        associated pairs, and matches are merged transitively.
        """
        if not observations:
            return []
        frames = {o.frame for o in observations}
        if len(frames) != 1:
            raise ValueError(f"bundle_frame got observations from frames {sorted(frames)}")

        by_source: dict[str, list[int]] = {}
        for idx, obs in enumerate(observations):
            by_source.setdefault(obs.source, []).append(idx)

        uf = UnionFind(len(observations))
        match = hungarian_match if self.matcher == "hungarian" else greedy_match

        for source_a, source_b in combinations(sorted(by_source), 2):
            idx_a, idx_b = by_source[source_a], by_source[source_b]
            affinity = np.full((len(idx_a), len(idx_b)), -1.0)
            for i, ia in enumerate(idx_a):
                for j, ib in enumerate(idx_b):
                    box_a = observations[ia].box
                    box_b = observations[ib].box
                    if self.is_associated(box_a, box_b):
                        affinity[i, j] = self.affinity(box_a, box_b)
            for i, j in match(affinity, threshold=-0.5):
                uf.union(idx_a[i], idx_b[j])

        frame = observations[0].frame
        bundles = []
        for group in uf.groups():
            bundles.append(
                ObservationBundle(
                    frame=frame, observations=[observations[i] for i in group]
                )
            )
        return bundles


class IoUBundler(Bundler):
    """Associates boxes whose BEV IoU exceeds a threshold."""

    def __init__(self, threshold: float = 0.5, matcher: str = "greedy"):
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        if matcher not in ("greedy", "hungarian"):
            raise ValueError(f"unknown matcher {matcher!r}")
        self.threshold = threshold
        self.matcher = matcher

    def is_associated(self, box1: Box3D, box2: Box3D) -> bool:
        return compute_iou(box1, box2) > self.threshold


class TrackBundler(IoUBundler):
    """The paper's worked-example bundler: IoU > 0.5."""

    def __init__(self):
        super().__init__(threshold=0.5)


class CenterDistanceBundler(Bundler):
    """Associates boxes whose BEV centers are within ``max_distance`` m.

    Useful when sources disagree on extent (e.g. a detector that
    systematically shrinks boxes) but agree on position.
    """

    def __init__(self, max_distance: float = 1.5):
        if max_distance <= 0:
            raise ValueError(f"max_distance must be positive, got {max_distance}")
        self.max_distance = max_distance

    def is_associated(self, box1: Box3D, box2: Box3D) -> bool:
        return box1.distance_to_box(box2) < self.max_distance

    def affinity(self, box1: Box3D, box2: Box3D) -> float:
        return -box1.distance_to_box(box2)
