"""Track building: linking bundles across time into LOA scenes.

The paper associates "observations within a track by box overlap across
time" (§8.2). :class:`TrackBuilder` implements that as online bipartite
matching between open tracks and the current frame's bundles:

1. per frame, group observations into bundles with a
   :class:`~repro.association.bundler.Bundler`;
2. match bundles to open tracks by the temporal affinity between the
   bundle's representative box and the track's most recent box —
   BEV IoU, with a center-distance gate as fallback for fast objects
   whose consecutive boxes barely overlap;
3. unmatched bundles open new tracks; tracks unmatched for more than
   ``max_gap`` frames are closed (flickering detections re-attach within
   the gap).

The output is a :class:`repro.core.model.Scene` — the input to LOA
compilation and scoring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.association.bundler import Bundler, IoUBundler
from repro.association.matching import greedy_match, hungarian_match
from repro.core.model import Observation, ObservationBundle, Scene, Track
from repro.geometry import Box3D, compute_iou

__all__ = ["TemporalAffinity", "TrackBuilder"]


@dataclass(frozen=True)
class TemporalAffinity:
    """Affinity between a track's last box and a candidate bundle box.

    Attributes:
        iou_threshold: Minimum BEV IoU for an overlap-based link.
        max_center_jump: Maximum BEV center displacement (meters) for a
            distance-based link; covers fast objects whose consecutive
            boxes no longer overlap.
    """

    iou_threshold: float = 0.05
    max_center_jump: float = 4.0

    def score(self, last_box: Box3D, candidate: Box3D) -> float:
        """Affinity in ``(0, 2]``; non-positive means "do not link".

        IoU dominates (range (0, 1] shifted up by 1) so overlapping
        candidates always beat distance-only candidates; distance-only
        links score in (0, 1) decreasing with distance.
        """
        iou = compute_iou(last_box, candidate)
        if iou > self.iou_threshold:
            return 1.0 + iou
        dist = last_box.distance_to_box(candidate)
        if dist < self.max_center_jump:
            return 1.0 - dist / self.max_center_jump
        return 0.0


@dataclass
class _OpenTrack:
    track_id: str
    bundles: list[ObservationBundle] = field(default_factory=list)
    last_frame: int = -1

    @property
    def last_box(self) -> Box3D:
        return self.bundles[-1].representative().box

    def predicted_box(self, frame: int) -> Box3D:
        """Constant-velocity extrapolation of the last box to ``frame``.

        Tracks of moving objects leave their previous box behind between
        frames (and across detection gaps); gating against the predicted
        position instead of the stale one keeps fast tracks whole.
        """
        last = self.last_box
        if len(self.bundles) < 2:
            return last
        prev_bundle = self.bundles[-2]
        prev = prev_bundle.representative().box
        frame_span = self.bundles[-1].frame - prev_bundle.frame
        if frame_span <= 0:
            return last
        ahead = frame - self.bundles[-1].frame
        vx = (last.x - prev.x) / frame_span
        vy = (last.y - prev.y) / frame_span
        return last.translated(vx * ahead, vy * ahead)


class TrackBuilder:
    """Builds LOA scenes (sets of tracks) from raw observations."""

    def __init__(
        self,
        bundler: Bundler | None = None,
        temporal: TemporalAffinity | None = None,
        max_gap: int = 2,
        matcher: str = "greedy",
    ):
        if max_gap < 0:
            raise ValueError(f"max_gap must be non-negative, got {max_gap}")
        if matcher not in ("greedy", "hungarian"):
            raise ValueError(f"unknown matcher {matcher!r}")
        self.bundler = bundler or IoUBundler(threshold=0.3)
        self.temporal = temporal or TemporalAffinity()
        self.max_gap = max_gap
        self.matcher = matcher

    # ------------------------------------------------------------------
    def build_scene(
        self,
        scene_id: str,
        dt: float,
        observations: list[Observation],
        metadata: dict | None = None,
    ) -> Scene:
        """Associate raw observations into a scene of tracks.

        Args:
            scene_id: Identifier for the produced scene.
            dt: Seconds per frame (threaded through for velocity features).
            observations: All observations, any order, any mix of sources.
            metadata: Optional scene metadata to attach.
        """
        by_frame: dict[int, list[Observation]] = {}
        for obs in observations:
            by_frame.setdefault(obs.frame, []).append(obs)

        ids = (f"{scene_id}-track{i:04d}" for i in itertools.count())
        open_tracks: list[_OpenTrack] = []
        closed: list[_OpenTrack] = []
        match = hungarian_match if self.matcher == "hungarian" else greedy_match

        for frame in sorted(by_frame):
            # Close tracks that have fallen outside the gap window.
            still_open: list[_OpenTrack] = []
            for track in open_tracks:
                if frame - track.last_frame > self.max_gap + 1:
                    closed.append(track)
                else:
                    still_open.append(track)
            open_tracks = still_open

            bundles = self.bundler.bundle_frame(by_frame[frame])
            if open_tracks and bundles:
                affinity = np.zeros((len(open_tracks), len(bundles)))
                for i, track in enumerate(open_tracks):
                    predicted = track.predicted_box(frame)
                    for j, bundle in enumerate(bundles):
                        affinity[i, j] = self.temporal.score(
                            predicted, bundle.representative().box
                        )
                pairs = match(affinity, threshold=0.0)
            else:
                pairs = []

            matched_bundles = set()
            for i, j in pairs:
                open_tracks[i].bundles.append(bundles[j])
                open_tracks[i].last_frame = frame
                matched_bundles.add(j)

            for j, bundle in enumerate(bundles):
                if j not in matched_bundles:
                    open_tracks.append(
                        _OpenTrack(track_id=next(ids), bundles=[bundle], last_frame=frame)
                    )

        closed.extend(open_tracks)
        tracks = [
            Track(track_id=t.track_id, bundles=t.bundles)
            for t in sorted(closed, key=lambda t: t.track_id)
        ]
        return Scene(
            scene_id=scene_id, dt=dt, tracks=tracks, metadata=dict(metadata or {})
        )
