"""Association: matching, bundling, and track building."""

from repro.association.bundler import (
    Bundler,
    CenterDistanceBundler,
    IoUBundler,
    TrackBundler,
)
from repro.association.matching import UnionFind, greedy_match, hungarian_match
from repro.association.tracker import TemporalAffinity, TrackBuilder

__all__ = [
    "Bundler",
    "CenterDistanceBundler",
    "IoUBundler",
    "TemporalAffinity",
    "TrackBuilder",
    "TrackBundler",
    "UnionFind",
    "greedy_match",
    "hungarian_match",
]
