"""repro — a reproduction of "Finding Label and Model Errors in Perception
Data With Learned Observation Assertions" (Kang et al., SIGMOD 2022).

The public API mirrors the paper's system, Fixy:

- :mod:`repro.api` — the unified audit API: declarative
  :class:`~repro.api.AuditSpec`, typed :class:`~repro.api.AuditResult`,
  pluggable execution backends, and the versioned client/service
  protocol (start here; see ``docs/API.md``);
- :mod:`repro.core` — the LOA DSL, feature distributions, AOFs, factor
  graph compilation, scoring, and the :class:`~repro.core.Fixy` engine;
- :mod:`repro.geometry`, :mod:`repro.association`,
  :mod:`repro.factorgraph`, :mod:`repro.distributions` — substrates;
- :mod:`repro.datagen`, :mod:`repro.labelers`, :mod:`repro.datasets` —
  the synthetic AV world and observation sources replacing the paper's
  proprietary datasets;
- :mod:`repro.baselines` — ad-hoc model assertions and uncertainty
  sampling;
- :mod:`repro.eval` — metrics and the experiment harness regenerating
  every table and figure.
"""

from repro.core import (
    Fixy,
    MissingObservationFinder,
    MissingTrackFinder,
    ModelErrorFinder,
    Observation,
    ObservationBundle,
    Scene,
    Track,
    default_features,
    model_error_features,
)

__version__ = "1.0.0"

__all__ = [
    "Fixy",
    "MissingObservationFinder",
    "MissingTrackFinder",
    "ModelErrorFinder",
    "Observation",
    "ObservationBundle",
    "Scene",
    "Track",
    "default_features",
    "model_error_features",
    "__version__",
]
